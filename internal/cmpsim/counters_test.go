package cmpsim

import (
	"strings"
	"testing"

	"xbsim/internal/compiler"
	"xbsim/internal/obs"
)

// oneSet returns a 2-way single-set cache so victim selection is fully
// hand-predictable: line addresses 0, 64, 128, ... all map to set 0.
func oneSet(prefetch bool) *Cache {
	return mustCache(CacheConfig{
		Name: "1set", CapacityBytes: 128, Associativity: 2, LineSize: 64,
		HitLatency: 1, NextLinePrefetch: prefetch,
	})
}

// TestEvictionAndWritebackCounts walks a handcrafted access sequence
// through a 2-way single-set cache and pins every counter transition:
// filling invalid ways evicts nothing, displacing a clean line counts
// only an eviction, displacing a dirty line counts an eviction and a
// writeback, and a write hit dirties the resident line.
func TestEvictionAndWritebackCounts(t *testing.T) {
	c := oneSet(false)
	check := func(step string, hits, misses, evictions, writebacks uint64) {
		t.Helper()
		if c.Hits != hits || c.Misses != misses || c.Evictions != evictions || c.Writebacks != writebacks {
			t.Fatalf("%s: hits/misses/evictions/writebacks = %d/%d/%d/%d, want %d/%d/%d/%d",
				step, c.Hits, c.Misses, c.Evictions, c.Writebacks, hits, misses, evictions, writebacks)
		}
	}

	c.AccessRW(0, true) // miss, fills invalid way 0, dirty
	check("write miss into invalid way", 0, 1, 0, 0)
	c.AccessRW(64, false) // miss, fills invalid way 1, clean
	check("read miss into invalid way", 0, 2, 0, 0)
	c.AccessRW(128, false) // miss, evicts LRU line 0 (dirty)
	check("read miss displacing dirty line", 0, 3, 1, 1)
	c.AccessRW(192, false) // miss, evicts LRU line 64 (clean)
	check("read miss displacing clean line", 0, 4, 2, 1)
	c.AccessRW(128, true) // write hit marks line 128 dirty
	check("write hit", 1, 4, 2, 1)
	c.AccessRW(256, false) // miss, evicts LRU line 192 (clean)
	check("read miss displacing clean line again", 1, 5, 3, 1)
	c.AccessRW(320, false) // miss, evicts line 128 (dirtied by the write hit)
	check("read miss displacing write-hit-dirtied line", 1, 6, 4, 2)
}

// TestSingleLineEvictionCounts is the 1-way/single-set edge case: every
// conflict miss after the first fill evicts, and only written lines ever
// write back.
func TestSingleLineEvictionCounts(t *testing.T) {
	c := mustCache(CacheConfig{
		Name: "1line", CapacityBytes: 64, Associativity: 1, LineSize: 64, HitLatency: 1,
	})
	// Ping-pong reads between two conflicting lines: all misses, an
	// eviction per miss after the first, never a writeback.
	for i := 0; i < 6; i++ {
		c.AccessRW(uint64(i%2)*64, false)
	}
	if c.Hits != 0 || c.Misses != 6 || c.Evictions != 5 || c.Writebacks != 0 {
		t.Fatalf("read ping-pong: hits/misses/evictions/writebacks = %d/%d/%d/%d, want 0/6/5/0",
			c.Hits, c.Misses, c.Evictions, c.Writebacks)
	}
	c.Reset()
	// The same ping-pong with writes: every evicted line is dirty.
	for i := 0; i < 6; i++ {
		c.AccessRW(uint64(i%2)*64, true)
	}
	if c.Evictions != 5 || c.Writebacks != 5 {
		t.Fatalf("write ping-pong: evictions/writebacks = %d/%d, want 5/5",
			c.Evictions, c.Writebacks)
	}
}

// TestPrefetchCounters pins the prefetch-side event accounting in the
// single-set cache: prefetch insertions, prefetch-caused evictions, and
// the writeback when a prefetch displaces a dirty line.
func TestPrefetchCounters(t *testing.T) {
	c := oneSet(true)

	c.AccessRW(0, false) // miss fills way 0; prefetches line 64 into invalid way 1
	if c.PrefetchFills != 1 || c.PrefetchEvictions != 0 {
		t.Fatalf("after cold miss: PrefetchFills/PrefetchEvictions = %d/%d, want 1/0",
			c.PrefetchFills, c.PrefetchEvictions)
	}
	c.AccessRW(64, true) // hit the prefetched line, dirty it
	if c.Hits != 1 {
		t.Fatalf("prefetched line did not hit")
	}
	// Miss on line 128: the demand fill evicts clean line 0 (LRU), then
	// the triggered prefetch of line 192 must displace dirty line 64 —
	// a prefetch eviction that writes back.
	c.AccessRW(128, false)
	if c.Evictions != 1 || c.PrefetchEvictions != 1 {
		t.Fatalf("Evictions/PrefetchEvictions = %d/%d, want 1/1", c.Evictions, c.PrefetchEvictions)
	}
	if c.Writebacks != 1 {
		t.Fatalf("Writebacks = %d, want 1 (dirty line displaced by prefetch)", c.Writebacks)
	}
	if c.PrefetchFills != 2 {
		t.Fatalf("PrefetchFills = %d, want 2", c.PrefetchFills)
	}
	// Prefetched lines arrive clean: evicting line 192 must not write back.
	c.AccessRW(256, false) // evicts line 192 or 128 (LRU = prefetch-filled 192)
	if c.Writebacks != 1 {
		t.Fatalf("Writebacks = %d after evicting clean prefetched line, want still 1", c.Writebacks)
	}
}

// TestPrefetchSuppressedCountsNothing pins that the demand-line
// protection in prefetch (1-way caches) increments no prefetch counters
// when the insertion is suppressed.
func TestPrefetchSuppressedCountsNothing(t *testing.T) {
	c := mustCache(CacheConfig{
		Name: "1line", CapacityBytes: 64, Associativity: 1, LineSize: 64,
		HitLatency: 1, NextLinePrefetch: true,
	})
	c.AccessRW(0, true)
	if c.PrefetchFills != 0 || c.PrefetchEvictions != 0 || c.Writebacks != 0 {
		t.Fatalf("suppressed prefetch touched counters: fills/evictions/writebacks = %d/%d/%d",
			c.PrefetchFills, c.PrefetchEvictions, c.Writebacks)
	}
}

// TestAccessRWPreservesHitMissBehavior pins the determinism contract:
// the write flag changes only the event counters, never hit/miss results
// or victim choice, so a write stream and a read stream over the same
// addresses see bit-identical hit sequences.
func TestAccessRWPreservesHitMissBehavior(t *testing.T) {
	for _, p := range []Policy{LRU, FIFO, Random} {
		t.Run(p.String(), func(t *testing.T) {
			cfg := CacheConfig{
				Name: "cmp-" + p.String(), CapacityBytes: 512, Associativity: 2,
				LineSize: 64, HitLatency: 1, Replacement: p,
			}
			reads := mustCache(cfg)
			writes := mustCache(cfg)
			addrs := []uint64{0, 64, 512, 0, 1024, 64, 2048, 512, 0, 64, 4096, 0}
			for i, a := range addrs {
				rh := reads.AccessRW(a, false)
				wh := writes.AccessRW(a, true)
				if rh != wh {
					t.Fatalf("access %d (%#x): read hit=%v write hit=%v", i, a, rh, wh)
				}
			}
			if reads.Hits != writes.Hits || reads.Misses != writes.Misses ||
				reads.Evictions != writes.Evictions {
				t.Fatalf("hits/misses/evictions diverged: reads %d/%d/%d writes %d/%d/%d",
					reads.Hits, reads.Misses, reads.Evictions,
					writes.Hits, writes.Misses, writes.Evictions)
			}
			if writes.Writebacks == 0 {
				t.Error("write stream produced no writebacks")
			}
			if reads.Writebacks != 0 {
				t.Errorf("read stream wrote back %d lines", reads.Writebacks)
			}
		})
	}
}

// TestResetClearsEventCounters pins that Reset clears the new event
// counters along with the legacy hit/miss pair.
func TestResetClearsEventCounters(t *testing.T) {
	c := oneSet(true)
	for i := uint64(0); i < 8; i++ {
		c.AccessRW(i*64, true)
	}
	c.Reset()
	if c.Hits|c.Misses|c.Evictions|c.Writebacks|c.PrefetchFills|c.PrefetchEvictions != 0 {
		t.Fatalf("counters survive Reset: %+v", *c)
	}
	if c.Access(0) {
		t.Fatal("line survived Reset")
	}
}

// TestPublishMetricsEventCounters pins that the per-level event counters
// flow into the registry under the documented names.
func TestPublishMetricsEventCounters(t *testing.T) {
	bin := compileFor(t, "gzip", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	sim, err := NewSimulator(bin, DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Drive enough stores through a tiny L1 to force dirty evictions.
	l1 := sim.hier.levels[0]
	for i := uint64(0); i < 4096; i++ {
		l1.AccessRW(i*64, true)
	}
	reg := obs.NewRegistry()
	sim.PublishMetrics(reg, "sim.full")
	snap := reg.Snapshot()
	for _, name := range []string{
		"sim.full.cache.l1.evictions",
		"sim.full.cache.l1.writebacks",
		"sim.full.cache.l1.prefetch_fills",
		"sim.full.cache.l1.prefetch_evictions",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %q not published", name)
		}
	}
	if snap.Counters["sim.full.cache.l1.evictions"] == 0 ||
		snap.Counters["sim.full.cache.l1.writebacks"] == 0 {
		t.Errorf("eviction/writeback counters zero after dirty sweep: %v/%v",
			snap.Counters["sim.full.cache.l1.evictions"],
			snap.Counters["sim.full.cache.l1.writebacks"])
	}
}

// TestHierarchyConfigDigest pins the digest's contract: deterministic,
// and sensitive to every configuration field the simulation depends on.
func TestHierarchyConfigDigest(t *testing.T) {
	base := DefaultHierarchyConfig()
	d := base.Digest()
	if d == "" || d != base.Digest() {
		t.Fatalf("digest not deterministic: %q vs %q", d, base.Digest())
	}
	mutate := []struct {
		name string
		fn   func(*HierarchyConfig)
	}{
		{"capacity", func(c *HierarchyConfig) { c.Levels[0].CapacityBytes *= 2 }},
		{"associativity", func(c *HierarchyConfig) { c.Levels[1].Associativity = 4 }},
		{"line-size", func(c *HierarchyConfig) { c.Levels[0].LineSize = 128 }},
		{"hit-latency", func(c *HierarchyConfig) { c.Levels[2].HitLatency++ }},
		{"policy", func(c *HierarchyConfig) { c.Levels[0].Replacement = FIFO }},
		{"prefetch", func(c *HierarchyConfig) { c.Levels[0].NextLinePrefetch = true }},
		{"memory-latency", func(c *HierarchyConfig) { c.MemoryLatency++ }},
		{"name", func(c *HierarchyConfig) { c.Levels[0].Name = "other" }},
	}
	for _, m := range mutate {
		t.Run(m.name, func(t *testing.T) {
			cfg := DefaultHierarchyConfig()
			m.fn(&cfg)
			if cfg.Digest() == d {
				t.Errorf("digest insensitive to %s", m.name)
			}
		})
	}
	if strings.ContainsAny(d, "/ ") {
		t.Errorf("digest %q contains separator characters", d)
	}
}
