// Package pinpoints serializes simulation-region descriptor files, the
// role PinPoints files play in the paper's toolchain (§4): the hand-off
// between simulation-point selection and the CMP$im-style simulator.
//
// A file describes, for one (binary, input) pair, the chosen simulation
// regions with their phases and weights. Regions are delimited either by
// dynamic instruction offsets (per-binary fixed length intervals) or by
// (marker ID, execution count) pairs (cross-binary variable length
// intervals). The format is JSON for inspectability.
package pinpoints

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"xbsim/internal/profile"
)

// Flavor distinguishes the two region-addressing schemes.
type Flavor string

const (
	// FlavorFLI regions are [StartInstr, EndInstr) dynamic instruction
	// ranges in the binary's own counting.
	FlavorFLI Flavor = "fli"
	// FlavorVLI regions are (marker, count) delimited and valid across
	// binaries after marker translation.
	FlavorVLI Flavor = "vli"
)

// Boundary mirrors profile.Boundary for serialization.
type Boundary struct {
	Marker int    `json:"marker"`
	Count  uint64 `json:"count"`
}

// Region is one simulation region.
type Region struct {
	// Phase is the SimPoint phase the region represents.
	Phase int `json:"phase"`
	// Weight is the fraction of dynamic instructions the phase covers in
	// this binary.
	Weight float64 `json:"weight"`
	// Interval is the source interval index in the clustered dataset.
	Interval int `json:"interval"`
	// StartInstr/EndInstr delimit FLI regions.
	StartInstr uint64 `json:"startInstr,omitempty"`
	EndInstr   uint64 `json:"endInstr,omitempty"`
	// Start/End delimit VLI regions; nil for FLI files.
	Start *Boundary `json:"start,omitempty"`
	End   *Boundary `json:"end,omitempty"`
}

// File is a complete region descriptor.
type File struct {
	// Program and Binary identify the compilation ("gcc", "gcc.32u").
	Program string `json:"program"`
	Binary  string `json:"binary"`
	// Input names the profiled input.
	Input string `json:"input"`
	// Flavor is the region addressing scheme.
	Flavor Flavor `json:"flavor"`
	// IntervalSize is the target interval size in instructions.
	IntervalSize uint64 `json:"intervalSize"`
	// Regions are the simulation regions, one per phase.
	Regions []Region `json:"regions"`
}

// Validate checks internal consistency.
func (f *File) Validate() error {
	if f.Program == "" || f.Binary == "" {
		return fmt.Errorf("pinpoints: missing program/binary name")
	}
	switch f.Flavor {
	case FlavorFLI, FlavorVLI:
	default:
		return fmt.Errorf("pinpoints: unknown flavor %q", f.Flavor)
	}
	var total float64
	for i, r := range f.Regions {
		if r.Weight < 0 || r.Weight > 1 {
			return fmt.Errorf("pinpoints: region %d weight %v out of [0,1]", i, r.Weight)
		}
		total += r.Weight
		switch f.Flavor {
		case FlavorFLI:
			if r.EndInstr <= r.StartInstr {
				return fmt.Errorf("pinpoints: region %d has empty instruction range", i)
			}
			if r.Start != nil || r.End != nil {
				return fmt.Errorf("pinpoints: region %d has marker boundaries in an FLI file", i)
			}
		case FlavorVLI:
			if r.Start == nil || r.End == nil {
				return fmt.Errorf("pinpoints: region %d missing marker boundaries", i)
			}
		}
	}
	if len(f.Regions) > 0 && (total < 0.999 || total > 1.001) {
		return fmt.Errorf("pinpoints: region weights sum to %v, want 1", total)
	}
	return nil
}

// ToProfileBoundary converts a serialized boundary.
func (b *Boundary) ToProfileBoundary() profile.Boundary {
	return profile.Boundary{Marker: b.Marker, Count: b.Count}
}

// FromProfileBoundary converts for serialization.
func FromProfileBoundary(b profile.Boundary) *Boundary {
	return &Boundary{Marker: b.Marker, Count: b.Count}
}

// Write encodes the file as indented JSON.
func (f *File) Write(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Read decodes and validates a file.
func Read(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("pinpoints: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Save writes the file to disk.
func (f *File) Save(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := f.Write(out); err != nil {
		return err
	}
	return out.Close()
}

// Load reads a file from disk.
func Load(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return Read(in)
}
