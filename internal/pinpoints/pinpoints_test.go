package pinpoints

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"xbsim/internal/profile"
)

func validVLI() *File {
	return &File{
		Program:      "gcc",
		Binary:       "gcc.32u",
		Input:        "ref",
		Flavor:       FlavorVLI,
		IntervalSize: 100_000,
		Regions: []Region{
			{Phase: 0, Weight: 0.6, Interval: 3,
				Start: &Boundary{Marker: 5, Count: 10}, End: &Boundary{Marker: 5, Count: 11}},
			{Phase: 1, Weight: 0.4, Interval: 9,
				Start: &Boundary{Marker: 2, Count: 4}, End: &Boundary{Marker: -1, Count: 1}},
		},
	}
}

func validFLI() *File {
	return &File{
		Program:      "gcc",
		Binary:       "gcc.64o",
		Input:        "ref",
		Flavor:       FlavorFLI,
		IntervalSize: 100_000,
		Regions: []Region{
			{Phase: 0, Weight: 1.0, Interval: 0, StartInstr: 0, EndInstr: 100_000},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	for _, f := range []*File{validVLI(), validFLI()} {
		var buf bytes.Buffer
		if err := f.Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(f, got) {
			t.Fatalf("round trip changed file:\n%+v\n%+v", f, got)
		}
	}
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "points.json")
	f := validVLI()
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatal("save/load changed file")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("loaded missing file")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*File)
	}{
		{"empty program", func(f *File) { f.Program = "" }},
		{"bad flavor", func(f *File) { f.Flavor = "xxx" }},
		{"weight > 1", func(f *File) { f.Regions[0].Weight = 1.5 }},
		{"weights not normalized", func(f *File) { f.Regions[0].Weight = 0.1 }},
		{"missing boundaries", func(f *File) { f.Regions[0].Start = nil }},
	}
	for _, tc := range cases {
		f := validVLI()
		tc.mutate(f)
		if err := f.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
	// FLI-specific.
	f := validFLI()
	f.Regions[0].EndInstr = 0
	if err := f.Validate(); err == nil {
		t.Error("empty FLI range validated")
	}
	f = validFLI()
	f.Regions[0].Start = &Boundary{}
	if err := f.Validate(); err == nil {
		t.Error("marker boundary in FLI file validated")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage parsed")
	}
	if _, err := Read(strings.NewReader(`{"program":"p","binary":"b","flavor":"vli","unknown":1}`)); err == nil {
		t.Fatal("unknown fields accepted")
	}
}

func TestBoundaryConversion(t *testing.T) {
	pb := profile.Boundary{Marker: 7, Count: 3}
	if got := FromProfileBoundary(pb).ToProfileBoundary(); got != pb {
		t.Fatalf("conversion round trip: %+v", got)
	}
}
