package sampler

import (
	"context"
	"fmt"
	"math"
	"sort"

	"xbsim/internal/bbv"
	"xbsim/internal/faults"
	"xbsim/internal/obs"
	"xbsim/internal/simpoint"
	"xbsim/internal/xrand"
)

const (
	defaultBudget = 12
	defaultStrata = 8
	// featureDim is the cheap-pass feature dimensionality. Stratification
	// only needs to tell coarse behavior regimes apart, not resolve fine
	// phase structure, so it projects far lower than SimPoint's 15 dims.
	featureDim = 4
)

// stratifiedSampler implements two-phase stratified sampling (Ekman):
//
// Phase 1 (stratify) computes cheap per-interval features — the L1
// normalized BBVs randomly projected to featureDim dimensions — and
// greedily splits the interval set into strata at weighted feature
// medians, always splitting the stratum with the largest weighted
// within-stratum variance.
//
// Phase 2 (allocate) spends a fixed deep-simulation budget across the
// strata Neyman-style (proportional to W_h·S_h, instruction weight times
// weighted feature standard deviation), then slices each stratum into
// that many contiguous segments and draws one representative interval per
// segment from an indexed xrand stream, weighted by interval length.
//
// Each segment becomes one phase of the returned simpoint.Result: the
// segment's representative is the phase's point, every member interval
// carries the phase label, and the phase weight is the segment's share of
// dynamic instructions. K therefore equals the (capped) budget exactly.
// The whole computation is serial arithmetic on deterministic streams —
// no pool, no map iteration — so output is bit-identical at any worker
// count.
type stratifiedSampler struct{}

func (stratifiedSampler) Name() string { return BackendStratified }

func (stratifiedSampler) Pick(ctx context.Context, ds *bbv.Dataset, cfg Config) (*simpoint.Result, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("sampler: empty dataset")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sampler: %w", err)
	}
	total := ds.TotalInstructions()
	if total == 0 {
		return nil, fmt.Errorf("sampler: dataset has no instructions")
	}
	budget := cfg.Budget
	if budget <= 0 {
		budget = defaultBudget
	}
	if budget > ds.Len() {
		budget = ds.Len()
	}
	maxStrata := cfg.Strata
	if maxStrata <= 0 {
		maxStrata = defaultStrata
	}
	if maxStrata > budget {
		maxStrata = budget
	}

	o := obs.From(ctx)
	rng := xrand.New("stratified/" + cfg.Seed)

	// Phase 1: cheap features + stratification.
	if err := faults.Hit(ctx, "sampler.stratify"); err != nil {
		return nil, err
	}
	_, sspan := obs.StartSpan(ctx, "stage.stratify")
	sspan.Annotate(cfg.Seed)
	feats, err := ds.Project(featureDim, rng.Split("features"))
	if err != nil {
		sspan.End()
		return nil, fmt.Errorf("sampler: %w", err)
	}
	lengths := ds.Lengths()
	strata := stratify(feats, lengths, maxStrata)
	sspan.End()
	o.Counter("sampler.stratified.runs").Inc()
	o.Gauge("sampler.stratified.strata").Set(float64(len(strata)))

	// Phase 2: Neyman budget allocation + per-segment draws.
	if err := faults.Hit(ctx, "sampler.allocate"); err != nil {
		return nil, err
	}
	_, aspan := obs.StartSpan(ctx, "stage.allocate")
	aspan.Annotate(cfg.Seed)
	alloc := allocate(strata, budget)

	phaseOf := make([]int, ds.Len())
	points := make([]simpoint.Point, 0, budget)
	phaseWeights := make([]float64, 0, budget)
	phase := 0
	for si, s := range strata {
		nh := alloc[si]
		for j := 0; j < nh; j++ {
			// Balanced contiguous segments; nh <= len(s.items) (capacity
			// cap in allocate), so every segment is nonempty.
			seg := s.items[len(s.items)*j/nh : len(s.items)*(j+1)/nh]
			var segInstr uint64
			for _, iv := range seg {
				phaseOf[iv] = phase
				segInstr += lengths[iv]
			}
			w := float64(segInstr) / float64(total)
			pick := seg[0]
			if len(seg) > 1 {
				segW := make([]float64, len(seg))
				for k, iv := range seg {
					segW[k] = float64(lengths[iv])
				}
				// Indexed by phase, not drawn from a shared sequence, so a
				// segment's draw never depends on how many precede it.
				pick = seg[rng.SplitIndexed("draw", phase).Pick(segW)]
			}
			points = append(points, simpoint.Point{
				Interval:     pick,
				Phase:        phase,
				Weight:       w,
				Instructions: lengths[pick],
			})
			phaseWeights = append(phaseWeights, w)
			phase++
		}
	}
	aspan.End()
	o.Gauge("sampler.stratified.points").Set(float64(phase))

	return &simpoint.Result{
		K:            phase,
		Points:       points,
		PhaseOf:      phaseOf,
		PhaseWeights: phaseWeights,
	}, nil
}

// stratum is one group of intervals sharing similar cheap features.
type stratum struct {
	items    []int     // member interval indices, ascending
	weight   float64   // total dynamic instructions across members
	sse      []float64 // per-dimension weighted sum of squared deviations
	totalSSE float64
	splitDim int // dimension with the largest splittable SSE, -1 when none
}

func newStratum(items []int, feats [][]float64, lengths []uint64) *stratum {
	dims := len(feats[items[0]])
	s := &stratum{items: items, sse: make([]float64, dims), splitDim: -1}
	mean := make([]float64, dims)
	minV := make([]float64, dims)
	maxV := make([]float64, dims)
	copy(minV, feats[items[0]])
	copy(maxV, feats[items[0]])
	for _, i := range items {
		w := float64(lengths[i])
		s.weight += w
		for d, v := range feats[i] {
			mean[d] += w * v
			if v < minV[d] {
				minV[d] = v
			}
			if v > maxV[d] {
				maxV[d] = v
			}
		}
	}
	if s.weight <= 0 {
		return s // unreachable: Project rejects empty intervals
	}
	for d := range mean {
		mean[d] /= s.weight
	}
	for _, i := range items {
		w := float64(lengths[i])
		for d, v := range feats[i] {
			dv := v - mean[d]
			s.sse[d] += w * dv * dv
		}
	}
	for d, v := range s.sse {
		s.totalSSE += v
		// Splittable needs genuinely distinct values, not merely SSE > 0:
		// identical values still yield a tiny positive SSE when the
		// weighted mean rounds, and splitting such a dimension would
		// produce an empty side.
		if minV[d] < maxV[d] && (s.splitDim < 0 || v > s.sse[s.splitDim]) {
			s.splitDim = d
		}
	}
	return s
}

// score is the Neyman allocation score W_h·S_h: instruction weight times
// weighted feature standard deviation.
func (s *stratum) score() float64 {
	if s.weight <= 0 || s.totalSSE <= 0 {
		return 0
	}
	return s.weight * math.Sqrt(s.totalSSE/s.weight)
}

// stratify greedily splits the interval set into at most maxStrata
// groups: repeatedly take the stratum with the largest weighted SSE (ties
// broken by earliest member) and split it at the weighted median of its
// highest-variance feature dimension. Splits are pure arithmetic on
// deterministic inputs, so the strata are identical on every run. Strata
// whose members have identical features (SSE 0) are unsplittable and the
// loop stops early — the all-identical-BBVs degenerate case yields a
// single stratum. The result is ordered by first member index.
func stratify(feats [][]float64, lengths []uint64, maxStrata int) []*stratum {
	all := make([]int, len(feats))
	for i := range all {
		all[i] = i
	}
	strata := []*stratum{newStratum(all, feats, lengths)}
	for len(strata) < maxStrata {
		best := -1
		for i, s := range strata {
			if s.splitDim < 0 {
				continue
			}
			if best < 0 || s.totalSSE > strata[best].totalSSE ||
				(s.totalSSE == strata[best].totalSSE && s.items[0] < strata[best].items[0]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		left, right := split(strata[best], feats, lengths)
		strata[best] = left
		strata = append(strata, right)
	}
	sort.Slice(strata, func(i, j int) bool { return strata[i].items[0] < strata[j].items[0] })
	return strata
}

// split partitions the stratum at the weighted median of its splitDim
// feature: members at or below the median value go left, the rest right.
// When every member is at or below (the median equals the maximum) the
// boundary tightens to strictly-below, which splitDim's min < max
// guarantee leaves both sides nonempty. Membership order is preserved,
// so items stay ascending.
func split(s *stratum, feats [][]float64, lengths []uint64) (left, right *stratum) {
	d := s.splitDim
	order := append([]int(nil), s.items...)
	sort.Slice(order, func(a, b int) bool {
		va, vb := feats[order[a]][d], feats[order[b]][d]
		if va != vb {
			return va < vb
		}
		return order[a] < order[b]
	})
	median := feats[order[len(order)-1]][d]
	var acc float64
	for _, i := range order {
		acc += float64(lengths[i])
		if acc >= s.weight/2 {
			median = feats[i][d]
			break
		}
	}
	var li, ri []int
	for _, i := range s.items {
		if feats[i][d] <= median {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(ri) == 0 {
		li, ri = nil, nil
		for _, i := range s.items {
			if feats[i][d] < median {
				li = append(li, i)
			} else {
				ri = append(ri, i)
			}
		}
	}
	return newStratum(li, feats, lengths), newStratum(ri, feats, lengths)
}

// allocate distributes the budget across strata: one point per stratum
// first (no nonempty stratum is starved below 1), then the remainder
// Neyman-proportional to each stratum's score via largest-remainder
// rounding, with per-stratum capacity caps (a stratum cannot absorb more
// points than it has members). The allocations always sum to exactly the
// budget: the caller caps the budget at the interval count, so total
// capacity suffices, and stratify caps the stratum count at the budget.
func allocate(strata []*stratum, budget int) []int {
	n := len(strata)
	alloc := make([]int, n)
	for i := range alloc {
		alloc[i] = 1
	}
	remaining := budget - n
	if remaining <= 0 {
		return alloc
	}

	scores := make([]float64, n)
	var totalScore float64
	for i, s := range strata {
		scores[i] = s.score()
		totalScore += scores[i]
	}
	if totalScore <= 0 {
		// Zero variance everywhere: fall back to instruction-weight
		// proportional allocation.
		for i, s := range strata {
			scores[i] = s.weight
			totalScore += s.weight
		}
	}

	rem := make([]float64, n)
	used := 0
	for i, s := range strata {
		quota := float64(remaining) * scores[i] / totalScore
		extra := int(quota)
		if room := len(s.items) - 1; extra > room {
			extra = room
		}
		alloc[i] += extra
		used += extra
		rem[i] = quota - float64(extra)
	}
	for used < remaining {
		best := -1
		for i, s := range strata {
			if alloc[i] >= len(s.items) {
				continue
			}
			if best < 0 || rem[i] > rem[best] {
				best = i
			}
		}
		// best >= 0 always: total capacity >= budget.
		alloc[best]++
		rem[best]--
		used++
	}
	return alloc
}
