// Package sampler puts point selection behind a pluggable interface.
//
// The paper's pipeline picks one representative interval per SimPoint
// phase; PAPERS.md's "CPU Simulation Using Two-Phase Stratified Sampling"
// (Ekman, NVIDIA) reaches equal CPI error with fewer simulated
// instructions by stratifying intervals with a cheap pass and spending a
// fixed deep-simulation budget where the within-stratum variance says it
// matters. Both designs answer the same question — which intervals do we
// simulate in detail, and with what weights — so they share one contract:
// a Sampler consumes a bbv.Dataset and produces a *simpoint.Result
// (points, per-interval phase labels, phase weights). Everything
// downstream — evaluation, weight recalculation per binary, memoization,
// fingerprints, goldens — is backend-agnostic.
//
// Backends are addressed by name ("simpoint", "stratified") so the choice
// threads through experiment.Config, checkpoint fingerprints, and the CLI
// as a plain string.
package sampler

import (
	"context"
	"fmt"
	"strings"

	"xbsim/internal/bbv"
	"xbsim/internal/pool"
	"xbsim/internal/simpoint"
)

// Backend names. BackendSimPoint is the default and preserves the
// pre-refactor pipeline bit for bit.
const (
	BackendSimPoint   = "simpoint"
	BackendStratified = "stratified"
)

// Backends returns the known backend names in stable order.
func Backends() []string { return []string{BackendSimPoint, BackendStratified} }

// Config carries every knob any backend needs; each backend reads its
// own subset and ignores the rest. Zero values select the backend's
// defaults, so a Config valid for SimPoint is valid for stratified too.
type Config struct {
	// MaxK, Dim, BICThreshold, Restarts, FixedK, and EarlyTolerance are
	// the SimPoint knobs; see simpoint.Config. The stratified backend
	// reuses Dim-independent cheap features and ignores these.
	MaxK           int
	Dim            int
	BICThreshold   float64
	Restarts       int
	FixedK         int
	EarlyTolerance float64
	// Seed names the deterministic random stream. Both backends derive
	// every draw from it, so equal (backend, seed, dataset) means equal
	// output regardless of worker count.
	Seed string
	// Pool, when non-nil, parallelizes the SimPoint k-sweep. The
	// stratified backend is cheap enough to run serially and ignores it
	// (which is also what makes its worker-invariance trivial).
	Pool *pool.Pool
	// Budget is the stratified deep-simulation budget: the total number
	// of simulation points drawn across all strata. <= 0 means 12. It is
	// capped at the interval count.
	Budget int
	// Strata caps how many strata the cheap pass may split the intervals
	// into. <= 0 means 8. It is capped at Budget (every nonempty stratum
	// receives at least one point, so more strata than budget would
	// starve some below 1).
	Strata int
}

// Sampler selects simulation points from an interval dataset. Pick must
// be deterministic in (dataset, Config.Seed) — bit-identical output at
// any worker count — because the invariant harness and the chaos smoke
// pin its fingerprints.
type Sampler interface {
	// Name returns the backend name, one of Backends().
	Name() string
	// Pick selects the simulation points.
	Pick(ctx context.Context, ds *bbv.Dataset, cfg Config) (*simpoint.Result, error)
}

// New returns the named backend. The empty string selects SimPoint, the
// pre-refactor default.
func New(name string) (Sampler, error) {
	switch name {
	case "", BackendSimPoint:
		return simpointSampler{}, nil
	case BackendStratified:
		return stratifiedSampler{}, nil
	}
	return nil, fmt.Errorf("sampler: unknown backend %q (want %s)",
		name, strings.Join(Backends(), " or "))
}
