package sampler

import (
	"testing"
)

// mkStratum builds a stratum over synthetic one-dimensional features.
func mkStratum(items []int, feats [][]float64, lengths []uint64) *stratum {
	return newStratum(items, feats, lengths)
}

// TestAllocate is the budget-allocation rounding table: allocations must
// sum to exactly the budget, no nonempty stratum may fall below one
// point, and no stratum may absorb more points than it has members.
func TestAllocate(t *testing.T) {
	// Features chosen so stratum variances differ: items 0-3 spread out,
	// 4-5 identical, 6-9 mildly spread.
	feats := [][]float64{
		{0.0}, {1.0}, {2.0}, {3.0},
		{5.0}, {5.0},
		{8.0}, {8.2}, {8.4}, {8.6},
	}
	lengths := []uint64{100, 100, 100, 100, 400, 400, 50, 50, 50, 50}
	groups := [][]int{{0, 1, 2, 3}, {4, 5}, {6, 7, 8, 9}}
	var strata []*stratum
	for _, g := range groups {
		strata = append(strata, mkStratum(g, feats, lengths))
	}

	for _, budget := range []int{3, 4, 5, 7, 10} {
		alloc := allocate(strata, budget)
		sum := 0
		for i, n := range alloc {
			sum += n
			if n < 1 {
				t.Fatalf("budget %d: stratum %d starved to %d points", budget, i, n)
			}
			if n > len(strata[i].items) {
				t.Fatalf("budget %d: stratum %d got %d points for %d members",
					budget, i, n, len(strata[i].items))
			}
		}
		if sum != budget {
			t.Fatalf("budget %d: allocations %v sum to %d", budget, alloc, sum)
		}
	}

	// Full budget saturates every stratum exactly.
	alloc := allocate(strata, 10)
	for i, n := range alloc {
		if n != len(strata[i].items) {
			t.Fatalf("saturating budget: stratum %d got %d of %d", i, n, len(strata[i].items))
		}
	}
}

// TestAllocateZeroVariance exercises the weight-proportional fallback:
// with zero variance everywhere the Neyman scores vanish, and the
// remaining budget must follow instruction weight instead.
func TestAllocateZeroVariance(t *testing.T) {
	feats := [][]float64{{1}, {1}, {1}, {1}, {1}, {1}}
	lengths := []uint64{900, 900, 900, 100, 100, 100}
	strata := []*stratum{
		mkStratum([]int{0, 1, 2}, feats, lengths),
		mkStratum([]int{3, 4, 5}, feats, lengths),
	}
	alloc := allocate(strata, 4)
	if alloc[0]+alloc[1] != 4 {
		t.Fatalf("allocations %v do not sum to 4", alloc)
	}
	if alloc[0] < alloc[1] {
		t.Fatalf("heavy stratum got %d points, light stratum %d", alloc[0], alloc[1])
	}
}

// TestStratify checks the splitting loop: respects maxStrata, partitions
// the intervals exactly, keeps members ascending, and separates clearly
// bimodal features.
func TestStratify(t *testing.T) {
	feats := [][]float64{
		{0.0}, {0.1}, {0.2}, {0.1},
		{9.0}, {9.1}, {9.2}, {9.1},
	}
	lengths := []uint64{100, 100, 100, 100, 100, 100, 100, 100}

	strata := stratify(feats, lengths, 2)
	if len(strata) != 2 {
		t.Fatalf("got %d strata, want 2", len(strata))
	}
	seen := map[int]bool{}
	for _, s := range strata {
		for i, it := range s.items {
			if seen[it] {
				t.Fatalf("interval %d in two strata", it)
			}
			seen[it] = true
			if i > 0 && s.items[i-1] >= it {
				t.Fatalf("stratum members not ascending: %v", s.items)
			}
		}
	}
	if len(seen) != len(feats) {
		t.Fatalf("%d intervals assigned, want %d", len(seen), len(feats))
	}
	// The bimodal split must separate the low cluster from the high one.
	for _, s := range strata {
		lo, hi := false, false
		for _, it := range s.items {
			if feats[it][0] < 5 {
				lo = true
			} else {
				hi = true
			}
		}
		if lo && hi {
			t.Fatalf("stratum %v mixes both modes", s.items)
		}
	}

	// Unsplittable input stops early regardless of maxStrata.
	same := [][]float64{{1}, {1}, {1}, {1}}
	if got := stratify(same, lengths[:4], 4); len(got) != 1 {
		t.Fatalf("identical features split into %d strata", len(got))
	}
}

// TestSplitSkewedMedian pins the boundary-tightening path: when the
// weighted median lands on the maximum feature value, the split must
// fall back to strictly-below and still leave both sides nonempty.
func TestSplitSkewedMedian(t *testing.T) {
	// One light low interval, three heavy identical high ones: the
	// weighted median is the maximum value.
	feats := [][]float64{{0.0}, {5.0}, {5.0}, {5.0}}
	lengths := []uint64{1, 1000, 1000, 1000}
	s := mkStratum([]int{0, 1, 2, 3}, feats, lengths)
	if s.splitDim != 0 {
		t.Fatalf("splitDim = %d, want 0", s.splitDim)
	}
	left, right := split(s, feats, lengths)
	if len(left.items) == 0 || len(right.items) == 0 {
		t.Fatalf("split produced an empty side: left=%v right=%v", left.items, right.items)
	}
	if len(left.items)+len(right.items) != 4 {
		t.Fatalf("split lost intervals: left=%v right=%v", left.items, right.items)
	}
}
