package sampler

import (
	"context"
	"strings"
	"testing"

	"xbsim/internal/bbv"
	"xbsim/internal/simpoint"
	"xbsim/internal/xrand"
)

// phasedDataset builds a dataset with `phases` distinct code signatures
// cycling phase-by-phase — the same shape the simpoint tests use, so
// both backends see realistic multi-modal interval populations.
func phasedDataset(phases, perPhase, visits int, jitter float64, seed string) *bbv.Dataset {
	rng := xrand.New(seed)
	ds := bbv.NewDataset()
	v := bbv.NewVector()
	for visit := 0; visit < visits; visit++ {
		for ph := 0; ph < phases; ph++ {
			for i := 0; i < perPhase; i++ {
				v.Reset()
				base := ph * 10
				for b := 0; b < 8; b++ {
					execs := uint64(100 + float64(50*b)*(1+jitter*rng.NormFloat64()))
					v.Add(base+b, execs, b%4+1)
				}
				ds.Append(v)
			}
		}
	}
	return ds
}

func TestNewBackends(t *testing.T) {
	for _, name := range append([]string{""}, Backends()...) {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = BackendSimPoint
		}
		if s.Name() != want {
			t.Fatalf("New(%q).Name() = %q, want %q", name, s.Name(), want)
		}
	}
	if _, err := New("bogus"); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("New(bogus) error = %v, want unknown backend", err)
	}
}

// TestSimPointBackendMatchesDirect pins the tentpole's bit-identity
// guarantee at the package level: the simpoint backend reached through
// the Sampler interface must produce exactly the result of calling
// simpoint.PickCtx directly with the corresponding configuration.
func TestSimPointBackendMatchesDirect(t *testing.T) {
	ds := phasedDataset(3, 4, 3, 0.02, "parity")
	cfg := Config{MaxK: 8, Dim: 15, BICThreshold: 0.9, Seed: "parity/seed"}

	smp, err := New(BackendSimPoint)
	if err != nil {
		t.Fatal(err)
	}
	got, err := smp.Pick(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := simpoint.PickCtx(context.Background(), ds, simpoint.Config{
		MaxK: 8, Dim: 15, BICThreshold: 0.9, Seed: "parity/seed",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("sampler-interface fingerprint %s != direct simpoint %s",
			got.Fingerprint(), want.Fingerprint())
	}
	if got.K != want.K || len(got.Points) != len(want.Points) {
		t.Fatalf("K=%d points=%d via interface, K=%d points=%d direct",
			got.K, len(got.Points), want.K, len(want.Points))
	}
}

func TestStratifiedDeterminism(t *testing.T) {
	ds := phasedDataset(4, 5, 3, 0.05, "det")
	cfg := Config{Seed: "det/seed", Budget: 9, Strata: 4}
	smp, err := New(BackendStratified)
	if err != nil {
		t.Fatal(err)
	}
	a, err := smp.Pick(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := smp.Pick(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("rerun fingerprint %s != %s", b.Fingerprint(), a.Fingerprint())
	}
}

// TestStratifiedResultShape checks the contract the pipeline depends
// on: K equals the (capped) budget exactly, every interval carries a
// valid phase label, every point's interval lies in its own phase, and
// the phase weights form a probability distribution.
func TestStratifiedResultShape(t *testing.T) {
	cases := []struct {
		name  string
		ds    *bbv.Dataset
		cfg   Config
		wantK int
	}{
		{"exact-budget", phasedDataset(3, 4, 3, 0.02, "shape"), Config{Seed: "s", Budget: 10, Strata: 5}, 10},
		{"budget-over-intervals", phasedDataset(2, 2, 1, 0, "cap"), Config{Seed: "s", Budget: 50}, 4},
		{"defaults", phasedDataset(4, 6, 3, 0.05, "def"), Config{Seed: "s"}, defaultBudget},
		{"single-point", phasedDataset(3, 4, 2, 0.05, "one"), Config{Seed: "s", Budget: 1}, 1},
	}
	smp, err := New(BackendStratified)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := smp.Pick(context.Background(), tc.ds, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.K != tc.wantK {
				t.Fatalf("K=%d, want %d", res.K, tc.wantK)
			}
			if len(res.Points) != res.K || len(res.PhaseWeights) != res.K {
				t.Fatalf("points=%d weights=%d, want K=%d of each",
					len(res.Points), len(res.PhaseWeights), res.K)
			}
			if len(res.PhaseOf) != tc.ds.Len() {
				t.Fatalf("labeled %d intervals, dataset has %d", len(res.PhaseOf), tc.ds.Len())
			}
			sum := 0.0
			for p, w := range res.PhaseWeights {
				if w <= 0 || w > 1 {
					t.Fatalf("phase %d weight %v outside (0,1]", p, w)
				}
				sum += w
			}
			if sum < 1-1e-9 || sum > 1+1e-9 {
				t.Fatalf("weights sum to %v, want 1", sum)
			}
			for i, ph := range res.PhaseOf {
				if ph < 0 || ph >= res.K {
					t.Fatalf("interval %d labeled phase %d, K=%d", i, ph, res.K)
				}
			}
			for _, pt := range res.Points {
				if res.PhaseOf[pt.Interval] != pt.Phase {
					t.Fatalf("point interval %d labeled phase %d, point says %d",
						pt.Interval, res.PhaseOf[pt.Interval], pt.Phase)
				}
				if pt.Instructions != tc.ds.Lengths()[pt.Interval] {
					t.Fatalf("point interval %d records %d instructions, dataset says %d",
						pt.Interval, pt.Instructions, tc.ds.Lengths()[pt.Interval])
				}
			}
		})
	}
}

func TestStratifiedErrors(t *testing.T) {
	smp, err := New(BackendStratified)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := smp.Pick(context.Background(), bbv.NewDataset(), Config{Seed: "s"}); err == nil ||
		!strings.Contains(err.Error(), "empty dataset") {
		t.Fatalf("empty dataset error = %v", err)
	}
	// A dataset whose intervals executed nothing: zero-instruction
	// binaries must be rejected before the projection ever runs.
	zero := bbv.NewDataset()
	zero.Append(bbv.NewVector())
	zero.Append(bbv.NewVector())
	if _, err := smp.Pick(context.Background(), zero, Config{Seed: "s"}); err == nil ||
		!strings.Contains(err.Error(), "no instructions") {
		t.Fatalf("zero-instruction dataset error = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := smp.Pick(ctx, phasedDataset(2, 2, 1, 0, "ctx"), Config{Seed: "s"}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

// TestStratifiedDegenerate covers the edge strata: a one-interval
// dataset and an all-identical-BBV dataset (zero variance everywhere,
// so stratification cannot split and allocation falls back to
// weight-proportional).
func TestStratifiedDegenerate(t *testing.T) {
	smp, err := New(BackendStratified)
	if err != nil {
		t.Fatal(err)
	}

	one := bbv.NewDataset()
	v := bbv.NewVector()
	v.Add(0, 100, 2)
	one.Append(v)
	res, err := smp.Pick(context.Background(), one, Config{Seed: "s", Budget: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 || res.Points[0].Interval != 0 || res.PhaseWeights[0] != 1 {
		t.Fatalf("one-interval dataset: K=%d points=%v weights=%v", res.K, res.Points, res.PhaseWeights)
	}

	same := bbv.NewDataset()
	for i := 0; i < 12; i++ {
		v.Reset()
		v.Add(0, 100, 2)
		v.Add(1, 50, 1)
		same.Append(v)
	}
	res, err = smp.Pick(context.Background(), same, Config{Seed: "s", Budget: 6, Strata: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Identical BBVs leave nothing to split on: one stratum, but the
	// budget still lands exactly via contiguous segments of it.
	if res.K != 6 {
		t.Fatalf("all-identical dataset: K=%d, want 6", res.K)
	}
	sum := 0.0
	for _, w := range res.PhaseWeights {
		sum += w
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		t.Fatalf("all-identical dataset weights sum to %v", sum)
	}
}
