package sampler

import (
	"context"

	"xbsim/internal/bbv"
	"xbsim/internal/simpoint"
)

// simpointSampler adapts simpoint.PickCtx to the Sampler interface. The
// Config mapping is one-to-one and adds nothing, so picks through this
// backend are bit-identical to calling simpoint.PickCtx directly — the
// package tests pin that with result fingerprints, and the unchanged
// golden files pin it at pipeline level.
type simpointSampler struct{}

func (simpointSampler) Name() string { return BackendSimPoint }

func (simpointSampler) Pick(ctx context.Context, ds *bbv.Dataset, cfg Config) (*simpoint.Result, error) {
	return simpoint.PickCtx(ctx, ds, simpoint.Config{
		MaxK:           cfg.MaxK,
		Dim:            cfg.Dim,
		BICThreshold:   cfg.BICThreshold,
		Restarts:       cfg.Restarts,
		Seed:           cfg.Seed,
		FixedK:         cfg.FixedK,
		EarlyTolerance: cfg.EarlyTolerance,
		Pool:           cfg.Pool,
	})
}
