// Package xrand provides deterministic, splittable pseudo-random number
// streams for the whole repository.
//
// Everything stochastic in xbsim — synthetic program generation, trip-count
// jitter, k-means initialization, random projection — draws from an
// *xrand.Stream keyed by an explicit string seed. Two streams created with
// the same key produce the same sequence on every platform, which makes
// whole experiments bit-reproducible.
//
// The core generator is SplitMix64 (Steele, Lea, Flood; "Fast splittable
// pseudorandom number generators", OOPSLA 2014). It is tiny, fast, passes
// BigCrush when used as specified, and — unlike math/rand — is trivially
// splittable: deriving a child stream from a parent never perturbs the
// parent's sequence.
package xrand

import (
	"hash/fnv"
	"math"
)

// Stream is a deterministic pseudo-random number stream. The zero value is
// a valid stream seeded with 0; prefer New or NewFromUint64 so the seed is
// explicit.
type Stream struct {
	// seed is the creation-time seed; Split derives children from it so a
	// child's sequence never depends on how far the parent has advanced.
	seed  uint64
	state uint64

	// gaussSpare holds a cached second Box-Muller variate.
	gaussSpare    float64
	gaussSpareSet bool
}

// New returns a stream deterministically derived from the given string key.
// The same key always yields the same stream.
func New(key string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return NewFromUint64(h.Sum64())
}

// NewFromUint64 returns a stream seeded with the given 64-bit value.
func NewFromUint64(seed uint64) *Stream {
	return &Stream{seed: seed, state: seed}
}

// Split derives an independent child stream named by label. The parent's
// own sequence is not advanced, so adding or removing Split calls never
// changes sibling streams.
func (s *Stream) Split(label string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	// Mix the parent's creation seed (not its evolving position) with the label.
	return NewFromUint64(mix64(s.seed ^ h.Sum64()))
}

// SplitIndexed derives an independent child stream named by a label and an
// index, convenient for per-element streams in loops.
func (s *Stream) SplitIndexed(label string, i int) *Stream {
	child := s.Split(label)
	return NewFromUint64(mix64(child.seed + uint64(i)*0x9E3779B97F4A7C15))
}

// mix64 is the SplitMix64 finalizer: a bijective mixing function on uint64.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Hash3 deterministically mixes three values into 64 uniform bits. It is
// the building block for input-dependent but binary-independent quantities
// such as loop trip counts: the same (seed, id, ordinal) always hashes to
// the same value, with no stream state involved.
func Hash3(a, b, c uint64) uint64 {
	return mix64(mix64(a^0x9E3779B97F4A7C15) + mix64(b+0xBF58476D1CE4E5B9) + mix64(c+0x94D049BB133111EB))
}

// Uint64 returns the next 64 uniformly random bits.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return mix64(s.state)
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (s *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Lemire's nearly-divisionless method would be faster; a simple
	// rejection loop keeps the code obviously correct and is plenty fast
	// for our workloads.
	mask := ^uint64(0)
	if n&(n-1) == 0 { // power of two
		return s.Uint64() & (n - 1)
	}
	limit := mask - mask%n
	for {
		v := s.Uint64()
		if v < limit {
			return v % n
		}
	}
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// IntRange returns a uniform value in [lo, hi]. It panics if hi < lo.
func (s *Stream) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 {
	// 53 random mantissa bits.
	return float64(s.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (s *Stream) NormFloat64() float64 {
	if s.gaussSpareSet {
		s.gaussSpareSet = false
		return s.gaussSpare
	}
	for {
		u := s.Float64()
		if u == 0 {
			continue
		}
		v := s.Float64()
		r := math.Sqrt(-2 * math.Log(u))
		theta := 2 * math.Pi * v
		s.gaussSpare = r * math.Sin(theta)
		s.gaussSpareSet = true
		return r * math.Cos(theta)
	}
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles the slice in place (Fisher–Yates).
func (s *Stream) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	return s.Float64() < p
}

// Pick returns a uniformly random element index weighted by weights.
// Weights must be non-negative with a positive sum; it panics otherwise.
func (s *Stream) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("xrand: negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("xrand: Pick with non-positive weight sum")
	}
	target := s.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}
