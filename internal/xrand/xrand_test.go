package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminismSameKey(t *testing.T) {
	a := New("seed-one")
	b := New("seed-one")
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestDifferentKeysDiffer(t *testing.T) {
	a := New("seed-one")
	b := New("seed-two")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different keys matched %d/100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New("parent")
	// Child sequence must not depend on how far the parent has advanced.
	c1 := parent.Split("child")
	want := make([]uint64, 16)
	for i := range want {
		want[i] = c1.Uint64()
	}
	parent.Uint64() // advance parent
	parent.Uint64()
	c2 := parent.Split("child")
	for i := range want {
		if got := c2.Uint64(); got != want[i] {
			t.Fatalf("child stream changed after parent advanced (step %d)", i)
		}
	}
}

func TestSplitIndexedDistinct(t *testing.T) {
	parent := New("parent")
	seen := map[uint64]int{}
	for i := 0; i < 64; i++ {
		v := parent.SplitIndexed("worker", i).Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("SplitIndexed %d and %d produced identical first draw", i, j)
		}
		seen[v] = i
	}
}

func TestUint64nBounds(t *testing.T) {
	s := New("bounds")
	for _, n := range []uint64{1, 2, 3, 7, 8, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New("x").Uint64n(0)
}

func TestIntRange(t *testing.T) {
	s := New("range")
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.IntRange(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntRange(3,7) = %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 7; v++ {
		if !seen[v] {
			t.Errorf("IntRange(3,7) never produced %d in 1000 draws", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New("floats")
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New("gauss")
	const n = 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New("perm")
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPickRespectsZeroWeights(t *testing.T) {
	s := New("pick")
	w := []float64{0, 1, 0, 2, 0}
	counts := make([]int, len(w))
	for i := 0; i < 3000; i++ {
		counts[s.Pick(w)]++
	}
	if counts[0] != 0 || counts[2] != 0 || counts[4] != 0 {
		t.Fatalf("picked zero-weight element: %v", counts)
	}
	if counts[3] < counts[1] {
		t.Errorf("weight-2 element picked less than weight-1: %v", counts)
	}
}

func TestPickPanicsOnAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with zero total weight did not panic")
		}
	}()
	New("x").Pick([]float64{0, 0})
}

func TestBoolProbability(t *testing.T) {
	s := New("bool")
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.03 {
		t.Errorf("Bool(0.25) hit rate %v", frac)
	}
}

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity on a sample; a full proof is structural
	// (each step of mix64 is invertible).
	seen := map[uint64]uint64{}
	s := New("mix")
	for i := 0; i < 10000; i++ {
		in := s.Uint64()
		out := mix64(in)
		if prev, ok := seen[out]; ok && prev != in {
			t.Fatalf("mix64 collision: mix64(%d) == mix64(%d)", in, prev)
		}
		seen[out] = in
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New("bench")
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}
