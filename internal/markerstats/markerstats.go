// Package markerstats analyzes the periodicity of instrumentation markers
// — how many dynamic instructions pass between consecutive firings of
// each procedure entry or loop branch, and how variable that gap is.
//
// This is the code-structure analysis of Lau, Perelman & Calder
// ("Selecting software phase markers with code structure analysis", CGO
// 2006) that the paper's related-work section builds on: a marker whose
// firing gap is regular (low coefficient of variation) and close to the
// desired interval size is a natural phase marker / interval boundary,
// while highly irregular markers cut intervals at unstable points.
// Cross Binary SimPoint constrains the choice further (markers must also
// be mappable); markerstats quantifies what each candidate is like.
package markerstats

import (
	"fmt"
	"math"
	"sort"

	"xbsim/internal/compiler"
	"xbsim/internal/exec"
	"xbsim/internal/program"
)

// Stat summarizes one marker's firing behavior over a run.
type Stat struct {
	// Marker is the binary-local marker ID.
	Marker int
	// Kind, Symbol, Line identify the marker (see compiler.Marker).
	Kind   compiler.MarkerKind
	Symbol string
	Line   int
	// Count is the number of firings.
	Count uint64
	// MeanGap is the mean dynamic instruction distance between
	// consecutive firings (and from start to the first firing).
	MeanGap float64
	// CV is the coefficient of variation of the gaps (stddev / mean);
	// 0 means perfectly periodic. NaN when fewer than 2 gaps.
	CV float64
}

// Collector is an exec.Visitor that gathers per-marker gap statistics
// with Welford's streaming algorithm (no gap lists are stored).
type Collector struct {
	bin   *compiler.Binary
	total uint64

	lastFire []uint64 // instruction count at previous firing
	fired    []bool
	count    []uint64
	mean     []float64
	m2       []float64
}

// NewCollector prepares a collector for the binary.
func NewCollector(bin *compiler.Binary) (*Collector, error) {
	if bin == nil {
		return nil, fmt.Errorf("markerstats: nil binary")
	}
	n := len(bin.Markers)
	return &Collector{
		bin:      bin,
		lastFire: make([]uint64, n),
		fired:    make([]bool, n),
		count:    make([]uint64, n),
		mean:     make([]float64, n),
		m2:       make([]float64, n),
	}, nil
}

// OnBlock implements exec.Visitor.
func (c *Collector) OnBlock(block int) {
	c.total += uint64(c.bin.Blocks[block].Instrs)
}

// OnMarker implements exec.Visitor.
func (c *Collector) OnMarker(marker int) {
	var gap float64
	if c.fired[marker] {
		gap = float64(c.total - c.lastFire[marker])
	} else {
		gap = float64(c.total)
		c.fired[marker] = true
	}
	c.lastFire[marker] = c.total
	// Welford update.
	c.count[marker]++
	delta := gap - c.mean[marker]
	c.mean[marker] += delta / float64(c.count[marker])
	c.m2[marker] += delta * (gap - c.mean[marker])
}

// TotalInstructions returns the instructions observed so far.
func (c *Collector) TotalInstructions() uint64 { return c.total }

// Stats returns per-marker summaries for every marker that fired,
// ordered by marker ID.
func (c *Collector) Stats() []Stat {
	var out []Stat
	for m := range c.count {
		if c.count[m] == 0 {
			continue
		}
		mk := c.bin.Markers[m]
		s := Stat{
			Marker:  m,
			Kind:    mk.Kind,
			Symbol:  mk.Symbol,
			Line:    mk.Line,
			Count:   c.count[m],
			MeanGap: c.mean[m],
			CV:      math.NaN(),
		}
		if c.count[m] >= 2 && c.mean[m] > 0 {
			variance := c.m2[m] / float64(c.count[m]-1)
			s.CV = math.Sqrt(variance) / c.mean[m]
		}
		out = append(out, s)
	}
	return out
}

// Collect runs the binary and returns its marker statistics.
func Collect(bin *compiler.Binary, in program.Input) ([]Stat, error) {
	c, err := NewCollector(bin)
	if err != nil {
		return nil, err
	}
	if err := exec.Run(bin, in, c); err != nil {
		return nil, err
	}
	return c.Stats(), nil
}

// RankForInterval orders marker statistics by suitability as interval
// boundaries for the given target size: markers whose mean gap divides
// the target cleanly (firing at least once per target-size window) and
// whose gaps are regular rank first. Markers that fire less than once
// per window are ranked last (they cannot bound target-size intervals).
func RankForInterval(stats []Stat, targetSize uint64) []Stat {
	ranked := append([]Stat(nil), stats...)
	score := func(s Stat) float64 {
		if s.MeanGap <= 0 {
			return math.Inf(1)
		}
		if s.MeanGap > float64(targetSize) {
			// Too coarse: penalize by how much it overshoots.
			return 1e6 * s.MeanGap / float64(targetSize)
		}
		cv := s.CV
		if math.IsNaN(cv) {
			cv = 1e3
		}
		// Prefer regular (low CV) markers; among those, finer ones give
		// SimPoint more boundary choices, but extremely hot markers add
		// profiling overhead — weight gap mildly toward the target.
		return cv + 0.1*math.Abs(math.Log(float64(targetSize)/s.MeanGap))
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		return score(ranked[i]) < score(ranked[j])
	})
	return ranked
}
