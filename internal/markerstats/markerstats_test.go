package markerstats

import (
	"math"
	"testing"

	"xbsim/internal/compiler"
	"xbsim/internal/exec"
	"xbsim/internal/program"
)

var refInput = program.Input{Name: "ref", Seed: 77}

func testBinary(t testing.TB, name string) *compiler.Binary {
	t.Helper()
	p, err := program.Generate(name, program.GenConfig{TargetOps: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	return compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch32, Opt: compiler.O0})
}

func TestCollectBasics(t *testing.T) {
	bin := testBinary(t, "gzip")
	stats, err := Collect(bin, refInput)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no marker stats")
	}
	mc := exec.NewMarkerCounter(bin)
	if err := exec.Run(bin, refInput, mc); err != nil {
		t.Fatal(err)
	}
	for _, s := range stats {
		if s.Count != mc.Counts[s.Marker] {
			t.Fatalf("marker %d: stat count %d vs ground truth %d", s.Marker, s.Count, mc.Counts[s.Marker])
		}
		if s.MeanGap <= 0 {
			t.Fatalf("marker %d: non-positive mean gap", s.Marker)
		}
		if s.Count >= 2 && !math.IsNaN(s.CV) && s.CV < 0 {
			t.Fatalf("marker %d: negative CV", s.Marker)
		}
	}
}

func TestMeanGapConservation(t *testing.T) {
	// For any marker, count * meanGap is at most total instructions
	// (gaps partition the prefix of execution up to the last firing).
	bin := testBinary(t, "art")
	c, err := NewCollector(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Run(bin, refInput, c); err != nil {
		t.Fatal(err)
	}
	total := float64(c.TotalInstructions())
	for _, s := range c.Stats() {
		covered := float64(s.Count) * s.MeanGap
		if covered > total*1.0001 {
			t.Fatalf("marker %d: gaps cover %v of %v instructions", s.Marker, covered, total)
		}
	}
}

func TestMainFiresOnceWithNaNCV(t *testing.T) {
	bin := testBinary(t, "gzip")
	stats, err := Collect(bin, refInput)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stats {
		if s.Symbol == "main" {
			if s.Count != 1 || !math.IsNaN(s.CV) {
				t.Fatalf("main: count %d CV %v", s.Count, s.CV)
			}
			return
		}
	}
	t.Fatal("main marker not found")
}

func TestPeriodicLoopHasLowCV(t *testing.T) {
	// A zero-jitter loop's latch fires with a perfectly regular gap in
	// steady state. Build a tiny custom program to assert CV ~ 0.
	p := &program.Program{Name: "periodic", Procs: []*program.Proc{{
		Index: 0, Name: "main", Line: 1, Body: []program.Stmt{
			&program.Loop{ID: 0, Line: 2, Trip: program.TripSpec{Base: 500},
				Body: []program.Stmt{
					&program.Compute{Line: 3, Ops: program.OpMix{IntOps: 10}},
				}},
		}}}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bin := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch32, Opt: compiler.O0})
	stats, err := Collect(bin, refInput)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range stats {
		if s.Kind == compiler.MarkerLoopBody {
			found = true
			if s.Count < 400 {
				t.Fatalf("latch fired %d times", s.Count)
			}
			// First gap includes prologue; the rest are identical, so CV
			// must be tiny.
			if s.CV > 0.2 {
				t.Fatalf("periodic latch CV %v", s.CV)
			}
		}
	}
	if !found {
		t.Fatal("no loop-body marker")
	}
}

func TestRankForInterval(t *testing.T) {
	stats := []Stat{
		{Marker: 0, MeanGap: 1_000, CV: 0.05},  // fine & regular: best
		{Marker: 1, MeanGap: 1_000, CV: 2.0},   // fine but erratic
		{Marker: 2, MeanGap: 500_000, CV: 0.0}, // far coarser than target: last
	}
	ranked := RankForInterval(stats, 10_000)
	if ranked[0].Marker != 0 {
		t.Fatalf("best marker = %d", ranked[0].Marker)
	}
	if ranked[len(ranked)-1].Marker != 2 {
		t.Fatalf("worst marker = %d", ranked[len(ranked)-1].Marker)
	}
	// Input slice must be untouched.
	if stats[0].Marker != 0 || stats[2].Marker != 2 {
		t.Fatal("RankForInterval mutated its input")
	}
}

func TestNewCollectorNilBinary(t *testing.T) {
	if _, err := NewCollector(nil); err == nil {
		t.Fatal("nil binary accepted")
	}
}
