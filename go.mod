module xbsim

go 1.22
