package xbsim_test

import (
	"fmt"
	"log"

	"xbsim"
)

// ExampleNewBenchmark synthesizes a benchmark and inspects its four
// compilations.
func ExampleNewBenchmark() {
	bench, err := xbsim.NewBenchmark("swim", 300_000)
	if err != nil {
		log.Fatal(err)
	}
	for _, bin := range bench.Binaries {
		fmt.Println(bin.Name)
	}
	// Output:
	// swim.32u
	// swim.32o
	// swim.64u
	// swim.64o
}

// ExampleFindMappablePoints shows mappable-point discovery: the points
// exist in all four binaries with identical execution counts.
func ExampleFindMappablePoints() {
	bench, err := xbsim.NewBenchmark("swim", 300_000)
	if err != nil {
		log.Fatal(err)
	}
	input := xbsim.Input{Name: "ref", Seed: 1}
	m, err := xbsim.FindMappablePoints(bench.Binaries, input, xbsim.MappingOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// "main" is always mappable: every binary keeps its symbol and calls
	// it exactly once.
	for _, pt := range m.Points {
		if pt.Name == "main" {
			fmt.Printf("main: kind=%v count=%d binaries=%d\n",
				pt.Kind, pt.Count, len(pt.Markers))
		}
	}
	// Output:
	// main: kind=proc count=1 binaries=4
}

// ExampleCrossBinaryPoints runs the paper's cross-binary pipeline and
// emits a PinPoints-style region file for one binary.
func ExampleCrossBinaryPoints() {
	bench, err := xbsim.NewBenchmark("swim", 300_000)
	if err != nil {
		log.Fatal(err)
	}
	input := xbsim.Input{Name: "ref", Seed: 1}
	cross, err := xbsim.CrossBinaryPoints(bench.Binaries, input, xbsim.PointsConfig{
		IntervalSize: 10_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	ps, err := cross.ForBinary(3) // 64-bit optimized
	if err != nil {
		log.Fatal(err)
	}
	file, err := ps.RegionFile(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s hasRegions=%v\n", file.Binary, file.Flavor, len(file.Regions) > 0)
	// Output:
	// swim.64o: vli hasRegions=true
}

// ExampleSimulateFull runs the CMP$im-style simulator to completion.
func ExampleSimulateFull() {
	bench, err := xbsim.NewBenchmark("swim", 300_000)
	if err != nil {
		log.Fatal(err)
	}
	st, err := xbsim.SimulateFull(bench.Binary("32o"), xbsim.Input{Name: "ref", Seed: 1}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CPI at least 1: %v\n", st.CPI() >= 1)
	fmt.Printf("memory traffic simulated: %v\n", st.Loads > 0 && st.Stores > 0)
	// Output:
	// CPI at least 1: true
	// memory traffic simulated: true
}

// ExampleTable1 prints the paper's simulated memory system parameters.
func ExampleTable1() {
	cfg := xbsim.Table1()
	for _, l := range cfg.Levels {
		fmt.Printf("%s %dKB %d-way %d-cycle\n",
			l.Name, l.CapacityBytes>>10, l.Associativity, l.HitLatency)
	}
	fmt.Printf("DRAM %d-cycle\n", cfg.MemoryLatency)
	// Output:
	// FLC(L1D) 32KB 2-way 3-cycle
	// MLC(L2D) 512KB 8-way 14-cycle
	// LLC(L3D) 1024KB 16-way 35-cycle
	// DRAM 250-cycle
}
