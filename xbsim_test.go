package xbsim

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"xbsim/internal/pinpoints"
)

var testInput = Input{Name: "ref", Seed: 2024}

func testBenchmark(t testing.TB, name string) *Benchmark {
	t.Helper()
	b, err := NewBenchmark(name, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func testPointsConfig() PointsConfig {
	return PointsConfig{IntervalSize: 8_000}
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 21 {
		t.Fatalf("%d benchmarks", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"gcc", "applu", "apsi", "mcf", "swim"} {
		if !seen[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestNewBenchmark(t *testing.T) {
	b := testBenchmark(t, "gzip")
	if len(b.Binaries) != 4 {
		t.Fatalf("%d binaries", len(b.Binaries))
	}
	if b.Binary("32u") == nil || b.Binary("64o") == nil {
		t.Fatal("Binary lookup failed")
	}
	if b.Binary("99x") != nil {
		t.Fatal("bogus target resolved")
	}
	if b.Binary("32u").Name != "gzip.32u" {
		t.Fatalf("binary name %q", b.Binary("32u").Name)
	}
	if _, err := NewBenchmark("not-a-benchmark", 0); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestTable1(t *testing.T) {
	cfg := Table1()
	if len(cfg.Levels) != 3 || cfg.MemoryLatency != 250 {
		t.Fatalf("Table1 = %+v", cfg)
	}
}

func TestCollectProfile(t *testing.T) {
	b := testBenchmark(t, "art")
	p, err := CollectProfile(b.Binary("32u"), testInput)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalInstructions == 0 || len(p.Procs) == 0 || len(p.Loops) == 0 {
		t.Fatal("empty profile")
	}
}

func TestFindMappablePoints(t *testing.T) {
	b := testBenchmark(t, "gzip")
	m, err := FindMappablePoints(b.Binaries, testInput, MappingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Points) == 0 {
		t.Fatal("no mappable points")
	}
}

func TestPerBinaryPointsAndEstimate(t *testing.T) {
	b := testBenchmark(t, "swim")
	bin := b.Binary("32o")
	ps, err := PerBinaryPoints(bin, testInput, testPointsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ps.Flavor != pinpoints.FlavorFLI || ps.NumPoints() == 0 {
		t.Fatalf("point set %+v", ps)
	}
	est, err := EstimateCPI(bin, testInput, ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := SimulateFull(bin, testInput, nil)
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(est-full.CPI()) / full.CPI()
	if relErr > 0.3 {
		t.Fatalf("FLI estimate %.3f vs true %.3f (err %.1f%%)", est, full.CPI(), relErr*100)
	}
}

func TestCrossBinaryPointsEndToEnd(t *testing.T) {
	b := testBenchmark(t, "swim")
	cross, err := CrossBinaryPoints(b.Binaries, testInput, testPointsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cross.K() == 0 || cross.NumIntervals() == 0 {
		t.Fatal("empty cross points")
	}
	for i, bin := range b.Binaries {
		ps, err := cross.ForBinary(i)
		if err != nil {
			t.Fatal(err)
		}
		if ps.Flavor != pinpoints.FlavorVLI {
			t.Fatal("wrong flavor")
		}
		var wsum float64
		for _, w := range ps.Weights {
			wsum += w
		}
		if math.Abs(wsum-1) > 0.02 {
			t.Fatalf("%s: weights sum %v", bin.Name, wsum)
		}
		est, err := EstimateCPI(bin, testInput, ps, nil)
		if err != nil {
			t.Fatal(err)
		}
		full, err := SimulateFull(bin, testInput, nil)
		if err != nil {
			t.Fatal(err)
		}
		relErr := math.Abs(est-full.CPI()) / full.CPI()
		if relErr > 0.3 {
			t.Fatalf("%s: VLI estimate %.3f vs true %.3f", bin.Name, est, full.CPI())
		}
	}
}

func TestEstimateCPIWrongBinary(t *testing.T) {
	b := testBenchmark(t, "art")
	ps, err := PerBinaryPoints(b.Binary("32u"), testInput, testPointsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateCPI(b.Binary("64o"), testInput, ps, nil); err == nil {
		t.Fatal("point set accepted for wrong binary")
	}
}

func TestRegionFileRoundTrip(t *testing.T) {
	b := testBenchmark(t, "art")
	// FLI flavor.
	fli, err := PerBinaryPoints(b.Binary("32u"), testInput, testPointsConfig())
	if err != nil {
		t.Fatal(err)
	}
	f, err := fli.RegionFile(testInput)
	if err != nil {
		t.Fatal(err)
	}
	if f.Flavor != pinpoints.FlavorFLI || len(f.Regions) != fli.NumPoints() {
		t.Fatalf("file %+v", f)
	}
	path := filepath.Join(t.TempDir(), "fli.json")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := pinpoints.Load(path); err != nil {
		t.Fatal(err)
	}
	// VLI flavor.
	cross, err := CrossBinaryPoints(b.Binaries, testInput, testPointsConfig())
	if err != nil {
		t.Fatal(err)
	}
	ps, err := cross.ForBinary(2)
	if err != nil {
		t.Fatal(err)
	}
	vf, err := ps.RegionFile(testInput)
	if err != nil {
		t.Fatal(err)
	}
	if vf.Flavor != pinpoints.FlavorVLI || vf.Binary != "art.64u" {
		t.Fatalf("file %+v", vf)
	}
	for _, r := range vf.Regions {
		if r.Start == nil || r.End == nil {
			t.Fatal("VLI region missing boundaries")
		}
	}
}

func TestRunExperimentsAndReport(t *testing.T) {
	cfg := QuickExperimentConfig()
	cfg.Benchmarks = []string{"swim"}
	cfg.TargetOps = 500_000
	cfg.IntervalSize = 8_000
	suite, err := RunExperiments(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, suite); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TABLE 1", "FIG4", "swim"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestQuickAndFullConfigs(t *testing.T) {
	q, f := QuickExperimentConfig(), FullExperimentConfig()
	if len(q.Benchmarks) >= len(f.Benchmarks) {
		t.Fatal("quick config not smaller than full")
	}
	if q.TargetOps >= f.TargetOps {
		t.Fatal("quick config ops not smaller")
	}
}

func TestPublicAnalysisSurface(t *testing.T) {
	b := testBenchmark(t, "gzip")
	bin := b.Binary("32u")

	// Marker statistics + ranking.
	stats, err := CollectMarkerStats(bin, testInput)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no marker stats")
	}
	ranked := RankMarkers(stats, 8_000)
	if len(ranked) != len(stats) {
		t.Fatal("ranking changed cardinality")
	}

	// Call-loop graph.
	g, err := BuildCallLoopGraph(bin, testInput)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.HottestLoops()) == 0 {
		t.Fatal("no loops in graph")
	}

	// Validation.
	rep, err := Verify(b.Binaries, testInput, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("invariants failed: %+v", rep.Checks)
	}
}

func TestPublicTraceSurface(t *testing.T) {
	b := testBenchmark(t, "art")
	bin := b.Binary("64o")
	var buf bytes.Buffer
	if err := RecordTrace(&buf, bin, testInput); err != nil {
		t.Fatal(err)
	}
	p1, err := CollectProfile(bin, testInput)
	if err != nil {
		t.Fatal(err)
	}
	// Replay must reproduce the total instruction count exactly.
	type counter struct{ instrs uint64 }
	c := struct {
		counter
		bin *Binary
	}{bin: bin}
	hdr, err := ReplayTrace(&buf, bin, visitorFunc(func(block int) {
		c.instrs += uint64(bin.Blocks[block].Instrs)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.BinaryName != bin.Name {
		t.Fatalf("header %+v", hdr)
	}
	if c.instrs != p1.TotalInstructions {
		t.Fatalf("replay saw %d instructions, profile %d", c.instrs, p1.TotalInstructions)
	}
}

// visitorFunc adapts a block callback to the Visitor interface.
type visitorFunc func(block int)

func (f visitorFunc) OnBlock(block int) { f(block) }
func (f visitorFunc) OnMarker(int)      {}

func TestSimulateFullWithCore(t *testing.T) {
	b := testBenchmark(t, "crafty")
	bin := b.Binary("32o")
	core := DefaultCore()
	base, err := SimulateFullWithCore(bin, testInput, nil, core)
	if err != nil {
		t.Fatal(err)
	}
	core.IssueWidth = 4
	wide, err := SimulateFullWithCore(bin, testInput, nil, core)
	if err != nil {
		t.Fatal(err)
	}
	if wide.CPI() >= base.CPI() {
		t.Fatalf("4-wide CPI %.3f not below 1-wide %.3f", wide.CPI(), base.CPI())
	}
}

func TestPointsConfigEarlyTolerance(t *testing.T) {
	b := testBenchmark(t, "swim")
	bin := b.Binary("32u")
	classic, err := PerBinaryPoints(bin, testInput, testPointsConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testPointsConfig()
	cfg.EarlyTolerance = 2.0
	early, err := PerBinaryPoints(bin, testInput, cfg)
	if err != nil {
		t.Fatal(err)
	}
	movedEarlier := false
	for p, iv := range early.PointInterval {
		if iv > classic.PointInterval[p] {
			t.Fatalf("phase %d: early point later than classic", p)
		}
		if iv < classic.PointInterval[p] {
			movedEarlier = true
		}
	}
	if !movedEarlier {
		t.Fatal("generous tolerance moved no point earlier")
	}
}
