// ISA comparison: the paper's first motivating scenario. An architect
// wants to know how much faster (or slower) the 64-bit build of each
// program runs compared to the 32-bit build — without simulating full
// executions. Per-binary SimPoint picks different regions for each binary
// and its biases shift; cross-binary SimPoint simulates the same semantic
// regions in both and keeps the bias consistent.
//
// Run with:
//
//	go run ./examples/isacompare
package main

import (
	"fmt"
	"log"
	"math"

	"xbsim"
)

func main() {
	input := xbsim.Input{Name: "ref", Seed: 7}
	cfg := xbsim.PointsConfig{IntervalSize: 20_000}
	benchmarks := []string{"gcc", "mcf", "swim", "crafty", "equake"}

	fmt.Println("Estimating 32-bit -> 64-bit speedup (optimized binaries)")
	fmt.Printf("%-8s %10s | %12s %8s | %12s %8s\n",
		"bench", "true", "per-binary", "error", "cross-binary", "error")

	for _, name := range benchmarks {
		bench, err := xbsim.NewBenchmark(name, 1_500_000)
		if err != nil {
			log.Fatal(err)
		}
		bin32, bin64 := bench.Binary("32o"), bench.Binary("64o")

		// Ground truth from full simulation.
		full32, err := xbsim.SimulateFull(bin32, input, nil)
		if err != nil {
			log.Fatal(err)
		}
		full64, err := xbsim.SimulateFull(bin64, input, nil)
		if err != nil {
			log.Fatal(err)
		}
		trueSpeedup := float64(full32.Cycles) / float64(full64.Cycles)

		// Per-binary SimPoint: independent points per binary.
		fliSpeedup, err := perBinarySpeedup(bench, bin32, bin64, input, cfg,
			full32.Instructions, full64.Instructions)
		if err != nil {
			log.Fatal(err)
		}

		// Cross-binary SimPoint: one set of points, mapped to both.
		vliSpeedup, err := crossBinarySpeedup(bench, input, cfg,
			full32.Instructions, full64.Instructions)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-8s %10.3f | %12.3f %7.2f%% | %12.3f %7.2f%%\n",
			name, trueSpeedup,
			fliSpeedup, relErr(trueSpeedup, fliSpeedup)*100,
			vliSpeedup, relErr(trueSpeedup, vliSpeedup)*100)
	}
}

func relErr(truth, est float64) float64 {
	return math.Abs(truth-est) / truth
}

// estimatedCycles converts a CPI estimate into cycles using the exact
// instruction count (cheap to obtain — it needs no timing simulation).
func estimatedCycles(bin *xbsim.Binary, input xbsim.Input, ps *xbsim.PointSet, instrs uint64) (float64, error) {
	cpi, err := xbsim.EstimateCPI(bin, input, ps, nil)
	if err != nil {
		return 0, err
	}
	return cpi * float64(instrs), nil
}

func perBinarySpeedup(bench *xbsim.Benchmark, a, b *xbsim.Binary, input xbsim.Input,
	cfg xbsim.PointsConfig, instrA, instrB uint64) (float64, error) {
	psA, err := xbsim.PerBinaryPoints(a, input, cfg)
	if err != nil {
		return 0, err
	}
	psB, err := xbsim.PerBinaryPoints(b, input, cfg)
	if err != nil {
		return 0, err
	}
	cycA, err := estimatedCycles(a, input, psA, instrA)
	if err != nil {
		return 0, err
	}
	cycB, err := estimatedCycles(b, input, psB, instrB)
	if err != nil {
		return 0, err
	}
	return cycA / cycB, nil
}

func crossBinarySpeedup(bench *xbsim.Benchmark, input xbsim.Input,
	cfg xbsim.PointsConfig, instrA, instrB uint64) (float64, error) {
	cross, err := xbsim.CrossBinaryPoints(bench.Binaries, input, cfg)
	if err != nil {
		return 0, err
	}
	idx := map[string]int{}
	for i, bin := range bench.Binaries {
		idx[bin.Target.String()] = i
	}
	psA, err := cross.ForBinary(idx["32o"])
	if err != nil {
		return 0, err
	}
	psB, err := cross.ForBinary(idx["64o"])
	if err != nil {
		return 0, err
	}
	cycA, err := estimatedCycles(bench.Binary("32o"), input, psA, instrA)
	if err != nil {
		return 0, err
	}
	cycB, err := estimatedCycles(bench.Binary("64o"), input, psB, instrB)
	if err != nil {
		return 0, err
	}
	return cycA / cycB, nil
}
