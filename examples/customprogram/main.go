// Custom program: build a program in the IR by hand instead of using the
// benchmark generator, compile it for all four targets, and run the full
// cross-binary pipeline on it. This is what adopting the library for your
// own workload model looks like.
//
// The program alternates between a cache-friendly phase (small strided
// working set) and a DRAM-bound phase (large random working set), calling
// a tiny helper that the optimizer will inline.
//
// Run with:
//
//	go run ./examples/customprogram
package main

import (
	"fmt"
	"log"

	"xbsim"
)

func buildProgram() *xbsim.Program {
	p := &xbsim.Program{Name: "custom"}

	// A small helper procedure — below the O2 inline threshold, so its
	// symbol disappears in optimized binaries and its loop is only
	// mappable through the count heuristic.
	helper := &xbsim.Proc{Index: 1, Name: "checksum", Line: 100, Body: []xbsim.Stmt{
		&xbsim.Loop{ID: 10, Line: 101, Trip: xbsim.TripSpec{Base: 6},
			Body: []xbsim.Stmt{
				&xbsim.Compute{Line: 102,
					Ops: xbsim.OpMix{IntOps: 4, Loads: 2},
					Mem: xbsim.MemPattern{Region: 0, WorkingSet: 4 << 10, Stride: 8, Class: xbsim.MemStride}},
			}},
	}}

	// Phase A: streaming over a small array (cache resident).
	phaseA := &xbsim.Proc{Index: 2, Name: "stream", Line: 200, Body: []xbsim.Stmt{
		&xbsim.Compute{Line: 201, Ops: xbsim.OpMix{IntOps: 80, FPOps: 10}},
		&xbsim.Loop{ID: 20, Line: 202, Trip: xbsim.TripSpec{Base: 40, Jitter: 4},
			Body: []xbsim.Stmt{
				&xbsim.Compute{Line: 203,
					Ops: xbsim.OpMix{IntOps: 10, FPOps: 20, Loads: 8, Stores: 4},
					Mem: xbsim.MemPattern{Region: 1, WorkingSet: 24 << 10, Stride: 8, Class: xbsim.MemStride}},
			}},
		&xbsim.Call{Line: 204, Callee: 1},
	}}

	// Phase B: pointer chasing over a large graph (DRAM bound).
	phaseB := &xbsim.Proc{Index: 3, Name: "chase", Line: 300, Body: []xbsim.Stmt{
		&xbsim.Compute{Line: 301, Ops: xbsim.OpMix{IntOps: 80, FPOps: 10}},
		&xbsim.Loop{ID: 30, Line: 302, Trip: xbsim.TripSpec{Base: 32, Jitter: 3},
			Body: []xbsim.Stmt{
				&xbsim.Compute{Line: 303,
					Ops: xbsim.OpMix{IntOps: 25, Loads: 12, Stores: 3},
					Mem: xbsim.MemPattern{Region: 2, WorkingSet: 8 << 20, Class: xbsim.MemRandom}},
			}},
	}}

	// main: alternate A, B, A, B, ... in sizable segments.
	var body []xbsim.Stmt
	loopID := 40
	line := 400
	for seg := 0; seg < 12; seg++ {
		callee := phaseA.Index
		if seg%2 == 1 {
			callee = phaseB.Index
		}
		body = append(body, &xbsim.Loop{
			ID: loopID, Line: line, Trip: xbsim.TripSpec{Base: 60, Jitter: 5},
			Body: []xbsim.Stmt{&xbsim.Call{Line: line + 1, Callee: callee}},
		})
		loopID++
		line += 10
	}
	p.Procs = []*xbsim.Proc{
		{Index: 0, Name: "main", Line: 1, Body: body},
		helper, phaseA, phaseB,
	}
	return p
}

func main() {
	prog := buildProgram()
	if err := prog.Validate(); err != nil {
		log.Fatal(err)
	}
	bins, err := xbsim.CompileAll(prog)
	if err != nil {
		log.Fatal(err)
	}
	input := xbsim.Input{Name: "ref", Seed: 1}

	fmt.Println("custom program: two alternating phases + an inlinable helper")
	cross, err := xbsim.CrossBinaryPoints(bins, input, xbsim.PointsConfig{IntervalSize: 30_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phases found: %d (expect ~2-3: stream, chase, main glue)\n", cross.K())
	fmt.Printf("mappable points: %d\n\n", len(cross.Mapping.Points))

	fmt.Printf("%-12s %10s %10s %8s\n", "binary", "true CPI", "est CPI", "error")
	for i, bin := range bins {
		ps, err := cross.ForBinary(i)
		if err != nil {
			log.Fatal(err)
		}
		est, err := xbsim.EstimateCPI(bin, input, ps, nil)
		if err != nil {
			log.Fatal(err)
		}
		full, err := xbsim.SimulateFull(bin, input, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.3f %10.3f %+7.2f%%\n",
			bin.Name, full.CPI(), est, (est-full.CPI())/full.CPI()*100)
	}

	// Emit a PinPoints-style region file for the optimized 64-bit binary.
	ps, err := cross.ForBinary(3)
	if err != nil {
		log.Fatal(err)
	}
	f, err := ps.RegionFile(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nregion file for %s: %d regions (use RegionFile().Save to persist)\n",
		f.Binary, len(f.Regions))
}
