// Compiler optimization exploration: the paper's third scenario. A
// compiler team evaluates how much an optimization level buys on a future
// processor using sampled simulation — and runs into the paper's §3.3
// hazard: optimizations like inlining and loop restructuring destroy the
// structure cross-binary mapping relies on. This example estimates the
// O0 -> O2 speedup for several benchmarks and then dissects applu, whose
// inlined-and-distributed solver loops defeat the mapping over large
// regions and inflate the variable length intervals (the paper's
// Figure 2 outlier).
//
// Run with:
//
//	go run ./examples/optexplore
package main

import (
	"fmt"
	"log"
	"math"

	"xbsim"
)

func main() {
	input := xbsim.Input{Name: "ref", Seed: 99}
	cfg := xbsim.PointsConfig{IntervalSize: 20_000}

	fmt.Println("O0 -> O2 speedup on the 32-bit platform, cross-binary SimPoint")
	fmt.Printf("%-8s %10s %10s %8s %14s\n", "bench", "true", "estimated", "error", "avg VLI size")
	for _, name := range []string{"gzip", "vpr", "applu", "sixtrack"} {
		bench, err := xbsim.NewBenchmark(name, 1_500_000)
		if err != nil {
			log.Fatal(err)
		}
		cross, err := xbsim.CrossBinaryPoints(bench.Binaries, input, cfg)
		if err != nil {
			log.Fatal(err)
		}

		type side struct {
			bin  *xbsim.Binary
			est  float64
			full *xbsim.Stats
		}
		sides := map[string]*side{"32u": nil, "32o": nil}
		var avgInterval float64
		for i, bin := range bench.Binaries {
			t := bin.Target.String()
			if _, want := sides[t]; !want {
				continue
			}
			ps, err := cross.ForBinary(i)
			if err != nil {
				log.Fatal(err)
			}
			est, err := xbsim.EstimateCPI(bin, input, ps, nil)
			if err != nil {
				log.Fatal(err)
			}
			full, err := xbsim.SimulateFull(bin, input, nil)
			if err != nil {
				log.Fatal(err)
			}
			sides[t] = &side{bin: bin, est: est, full: full}
			avgInterval += float64(full.Instructions) / float64(cross.NumIntervals()) / 2
		}
		u, o := sides["32u"], sides["32o"]
		trueSpeedup := float64(u.full.Cycles) / float64(o.full.Cycles)
		estSpeedup := (u.est * float64(u.full.Instructions)) /
			(o.est * float64(o.full.Instructions))
		fmt.Printf("%-8s %10.3f %10.3f %7.2f%% %14.0f\n",
			name, trueSpeedup, estSpeedup,
			math.Abs(trueSpeedup-estSpeedup)/trueSpeedup*100, avgInterval)
	}

	// Dissect applu's mapping failure.
	fmt.Println("\napplu under the hood (why its intervals balloon):")
	bench, err := xbsim.NewBenchmark("applu", 1_500_000)
	if err != nil {
		log.Fatal(err)
	}
	m, err := xbsim.FindMappablePoints(bench.Binaries, input, xbsim.MappingOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for bi, bin := range m.Binaries {
		fmt.Printf("  %-10s %3d loop pieces, %3d with no mappable entry point\n",
			bin.Name, m.Diag.LoopsPerBinary[bi], m.Diag.UnmappedLoopsPerBinary[bi])
	}
	fmt.Printf("  inlined-loop heuristic: %d matched, %d ambiguous\n",
		m.Diag.HeuristicMatched, m.Diag.HeuristicAmbiguous)
	fmt.Println("  The five solve_* procedures are inlined at O2 and their loops")
	fmt.Println("  distributed into count-identical pieces, so neither line matching")
	fmt.Println("  nor the count heuristic can place boundaries inside them; intervals")
	fmt.Println("  stretch to the next surviving marker.")

	// Show the same comparison with the heuristic disabled: coverage
	// drops further.
	noHeur, err := xbsim.FindMappablePoints(bench.Binaries, input, xbsim.MappingOptions{
		DisableInlineHeuristic: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  mappable points: %d with the heuristic, %d without\n",
		len(m.Points), len(noHeur.Points))
}
