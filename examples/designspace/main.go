// Design-space exploration: the paper's §1 scenario in full. An architect
// must decide which (binary, memory system) combination performs best —
// e.g. "should we ship the 64-bit binary, and how much L2 do we need?" —
// without fully simulating every combination.
//
// Simulation points are chosen ONCE (basic block vectors depend only on
// executed code, not on the memory system), then each candidate memory
// system simulates only those regions in each binary. Cross-binary points
// make the comparison apples-to-apples: the same semantic work is measured
// in every cell of the design matrix.
//
// Run with:
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"xbsim"
)

// l2Variant builds a Table-1 hierarchy with a different L2 capacity.
func l2Variant(capacityKB uint64) xbsim.HierarchyConfig {
	cfg := xbsim.Table1()
	cfg.Levels[1].CapacityBytes = capacityKB << 10
	return cfg
}

func main() {
	const benchName = "twolf"
	bench, err := xbsim.NewBenchmark(benchName, 1_500_000)
	if err != nil {
		log.Fatal(err)
	}
	input := xbsim.Input{Name: "ref", Seed: 11}

	// Phase 1 (one-time): pick cross-binary simulation points.
	cross, err := xbsim.CrossBinaryPoints(bench.Binaries, input, xbsim.PointsConfig{
		IntervalSize: 20_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d phases chosen once, reused across the whole design space\n\n",
		benchName, cross.K())

	memSystems := []struct {
		name string
		cfg  xbsim.HierarchyConfig
	}{
		{"L2=256KB", l2Variant(256)},
		{"L2=512KB", l2Variant(512)}, // the paper's Table 1
		{"L2=1MB", l2Variant(1024)},
	}
	binaries := []string{"32o", "64o"}

	// Phase 2: estimated cycles for every (binary, memory system) cell,
	// with full-simulation truth alongside to grade the decisions.
	fmt.Printf("%-10s %-10s %14s %14s %8s\n",
		"binary", "memory", "est cycles", "true cycles", "err")
	type cell struct {
		bin, mem          string
		estCyc, trueCyc   float64
		estBest, trueBest bool
	}
	var cells []cell
	for _, target := range binaries {
		bin := bench.Binary(target)
		var idx int
		for i, b := range bench.Binaries {
			if b == bin {
				idx = i
			}
		}
		points, err := cross.ForBinary(idx)
		if err != nil {
			log.Fatal(err)
		}
		for _, mem := range memSystems {
			cfg := mem.cfg
			est, err := xbsim.EstimateCPI(bin, input, points, &cfg)
			if err != nil {
				log.Fatal(err)
			}
			full, err := xbsim.SimulateFull(bin, input, &cfg)
			if err != nil {
				log.Fatal(err)
			}
			estCyc := est * float64(full.Instructions)
			cells = append(cells, cell{
				bin: bin.Name, mem: mem.name,
				estCyc: estCyc, trueCyc: float64(full.Cycles),
			})
		}
	}

	// Mark the winners under the estimate and under truth.
	bestEst, bestTrue := 0, 0
	for i, c := range cells {
		if c.estCyc < cells[bestEst].estCyc {
			bestEst = i
		}
		if c.trueCyc < cells[bestTrue].trueCyc {
			bestTrue = i
		}
	}
	cells[bestEst].estBest = true
	cells[bestTrue].trueBest = true

	for _, c := range cells {
		marks := ""
		if c.estBest {
			marks += "  <- best (estimated)"
		}
		if c.trueBest {
			marks += "  <- best (true)"
		}
		fmt.Printf("%-10s %-10s %14.0f %14.0f %7.2f%%%s\n",
			c.bin, c.mem, c.estCyc, c.trueCyc,
			(c.estCyc-c.trueCyc)/c.trueCyc*100, marks)
	}
	if bestEst == bestTrue {
		fmt.Println("\nThe sampled estimate picked the same design as full simulation,")
		fmt.Printf("simulating ~%d regions per cell instead of whole programs.\n", cross.K())
	} else {
		fmt.Println("\nThe sampled estimate picked a different design than full simulation;")
		fmt.Println("with consistent bias this indicates the candidates are within the")
		fmt.Println("sampling error of each other.")
	}
}
