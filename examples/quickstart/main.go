// Quickstart: the paper's pitch in one program. Pick one set of
// cross-binary simulation points for a benchmark, estimate every binary's
// CPI from a handful of simulated regions, and — the part that matters
// for design-space exploration — estimate speedups between binaries.
//
// Whole-program CPI estimates carry sampling bias (phases merged when a
// program has more behaviors than clusters), but because cross-binary
// SimPoint simulates the SAME semantic regions in every binary, the bias
// is consistent and cancels in speedup ratios. Per-binary SimPoint picks
// unrelated regions per binary, so its biases shift and pollute the
// comparison.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"xbsim"
)

func main() {
	// Synthesize the "crafty"-like benchmark (irregular chess-engine-style
	// integer code with seven distinct behaviors) and compile the paper's
	// four binaries: 32/64-bit x unoptimized/optimized.
	bench, err := xbsim.NewBenchmark("crafty", 2_000_000)
	if err != nil {
		log.Fatal(err)
	}
	input := xbsim.Input{Name: "ref", Seed: 42}
	cfg := xbsim.PointsConfig{IntervalSize: 25_000}

	// Cross-binary (VLI) points: one SimPoint run on the primary binary,
	// cut at points mappable across all four binaries.
	cross, err := xbsim.CrossBinaryPoints(bench.Binaries, input, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crafty: %d phases over %d shared intervals, %d mappable points\n\n",
		cross.K(), cross.NumIntervals(), len(cross.Mapping.Points))

	type result struct {
		trueCycles uint64
		instrs     uint64
		vliCPI     float64
		fliCPI     float64
		trueCPI    float64
	}
	results := make([]result, len(bench.Binaries))

	fmt.Printf("%-10s %9s | %9s %8s | %9s %8s\n",
		"binary", "true CPI", "VLI est", "bias", "FLI est", "bias")
	for i, bin := range bench.Binaries {
		vliPoints, err := cross.ForBinary(i)
		if err != nil {
			log.Fatal(err)
		}
		vli, err := xbsim.EstimateCPI(bin, input, vliPoints, nil)
		if err != nil {
			log.Fatal(err)
		}
		// Per-binary (FLI) baseline: an independent SimPoint run on this
		// binary alone.
		fliPoints, err := xbsim.PerBinaryPoints(bin, input, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fli, err := xbsim.EstimateCPI(bin, input, fliPoints, nil)
		if err != nil {
			log.Fatal(err)
		}
		full, err := xbsim.SimulateFull(bin, input, nil)
		if err != nil {
			log.Fatal(err)
		}
		results[i] = result{full.Cycles, full.Instructions, vli, fli, full.CPI()}
		fmt.Printf("%-10s %9.3f | %9.3f %+7.1f%% | %9.3f %+7.1f%%\n",
			bin.Name, full.CPI(),
			vli, (vli-full.CPI())/full.CPI()*100,
			fli, (fli-full.CPI())/full.CPI()*100)
	}

	// Speedups: the biases above cancel for VLI (same regions simulated
	// everywhere) but not for FLI.
	fmt.Printf("\n%-22s %8s | %8s %8s | %8s %8s\n",
		"speedup pair", "true", "VLI est", "error", "FLI est", "error")
	pairs := []struct {
		name string
		a, b int
	}{
		{"32-bit: O0 -> O2", 0, 1},
		{"64-bit: O0 -> O2", 2, 3},
		{"O0: 32 -> 64-bit", 0, 2},
		{"O2: 32 -> 64-bit", 1, 3},
	}
	for _, p := range pairs {
		ra, rb := results[p.a], results[p.b]
		truth := float64(ra.trueCycles) / float64(rb.trueCycles)
		vli := (ra.vliCPI * float64(ra.instrs)) / (rb.vliCPI * float64(rb.instrs))
		fli := (ra.fliCPI * float64(ra.instrs)) / (rb.fliCPI * float64(rb.instrs))
		fmt.Printf("%-22s %8.3f | %8.3f %7.2f%% | %8.3f %7.2f%%\n",
			p.name, truth,
			vli, math.Abs(truth-vli)/truth*100,
			fli, math.Abs(truth-fli)/truth*100)
	}
}
