package xbsim

import (
	"math"
	"strings"
	"testing"
)

// TestForBinaryErrorPaths pins the index validation of
// CrossPoints.ForBinary: out-of-range indices must return an error, not
// panic, and valid indices must keep working.
func TestForBinaryErrorPaths(t *testing.T) {
	b := testBenchmark(t, "swim")
	cross, err := CrossBinaryPoints(b.Binaries, testInput, testPointsConfig())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		b       int
		wantErr string
	}{
		{"negative", -1, "out of range"},
		{"just-past-end", len(b.Binaries), "out of range"},
		{"far-past-end", 100, "out of range"},
		{"first", 0, ""},
		{"last", len(b.Binaries) - 1, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ps, err := cross.ForBinary(tc.b)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ForBinary(%d) err = %v, want %q", tc.b, err, tc.wantErr)
				}
				if ps != nil {
					t.Fatalf("ForBinary(%d) returned a point set with an error", tc.b)
				}
				return
			}
			if err != nil {
				t.Fatalf("ForBinary(%d): %v", tc.b, err)
			}
			if ps.Binary != b.Binaries[tc.b] {
				t.Fatalf("ForBinary(%d) returned points for %s", tc.b, ps.Binary.Name)
			}
		})
	}
}

// TestPointSetWeightEdgeCases drives point selection into the weight
// normalization corners: a forced single phase, a single interval
// covering the whole run, and hand-mutated weights (zero-weight phase,
// unrepresented phase, all weights zero).
func TestPointSetWeightEdgeCases(t *testing.T) {
	b := testBenchmark(t, "swim")
	bin := b.Binary("32u")

	t.Run("k-equals-1", func(t *testing.T) {
		cfg := testPointsConfig()
		cfg.MaxK = 1
		ps, err := PerBinaryPoints(bin, testInput, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(ps.Weights) != 1 || math.Abs(ps.Weights[0]-1) > 1e-12 {
			t.Fatalf("k=1 weights = %v, want [1]", ps.Weights)
		}
		if ps.NumPoints() != 1 {
			t.Fatalf("k=1 chose %d points", ps.NumPoints())
		}
		est, err := EstimateCPI(bin, testInput, ps, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(est) || est <= 0 {
			t.Fatalf("k=1 estimate %v", est)
		}
	})

	t.Run("single-interval", func(t *testing.T) {
		cfg := testPointsConfig()
		cfg.IntervalSize = 100_000_000 // larger than the whole run
		ps, err := PerBinaryPoints(bin, testInput, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(ps.PhaseOf) != 1 {
			t.Fatalf("single giant interval produced %d intervals", len(ps.PhaseOf))
		}
		if len(ps.Weights) != 1 || math.Abs(ps.Weights[0]-1) > 1e-12 {
			t.Fatalf("single-interval weights = %v, want [1]", ps.Weights)
		}
		if ps.PointInterval[0] != 0 {
			t.Fatalf("single-interval representative = %d, want 0", ps.PointInterval[0])
		}
	})

	base, err := PerBinaryPoints(bin, testInput, testPointsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Weights) < 2 {
		t.Fatalf("need k >= 2 for the mutation cases, got %d", len(base.Weights))
	}
	// clone gives each mutation case its own weights/intervals.
	clone := func() *PointSet {
		ps := *base
		ps.Weights = append([]float64(nil), base.Weights...)
		ps.PointInterval = append([]int(nil), base.PointInterval...)
		return &ps
	}

	t.Run("zero-weight-phase", func(t *testing.T) {
		ps := clone()
		// Move phase 0's mass to phase 1: EstimateStats must skip the
		// zero-weight phase and still produce a finite estimate.
		ps.Weights[1] += ps.Weights[0]
		ps.Weights[0] = 0
		est, err := EstimateStats(bin, testInput, ps, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(est.CPI) || est.CPI <= 0 {
			t.Fatalf("estimate with zero-weight phase = %v", est.CPI)
		}
	})

	t.Run("unrepresented-phase", func(t *testing.T) {
		ps := clone()
		// A phase with weight but no representative interval (-1) is
		// skipped and the remaining weights renormalized.
		ps.PointInterval[0] = -1
		est, err := EstimateStats(bin, testInput, ps, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(est.CPI) || est.CPI <= 0 {
			t.Fatalf("estimate with unrepresented phase = %v", est.CPI)
		}
	})

	t.Run("all-weights-zero", func(t *testing.T) {
		ps := clone()
		for p := range ps.Weights {
			ps.Weights[p] = 0
		}
		if _, err := EstimateStats(bin, testInput, ps, nil); err == nil ||
			!strings.Contains(err.Error(), "no usable simulation points") {
			t.Fatalf("all-zero weights: err = %v, want no-usable-points error", err)
		}
	})
}

// TestFingerprintAccessors pins the public digest/accessor surface the
// self-check harness relies on.
func TestFingerprintAccessors(t *testing.T) {
	b := testBenchmark(t, "swim")
	cross, err := CrossBinaryPoints(b.Binaries, testInput, testPointsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cross.Ends()); got != cross.NumIntervals() {
		t.Fatalf("Ends() returned %d boundaries, NumIntervals %d", got, cross.NumIntervals())
	}
	if got := len(cross.PhaseOf()); got != cross.NumIntervals() {
		t.Fatalf("PhaseOf() returned %d labels, NumIntervals %d", got, cross.NumIntervals())
	}
	if got := len(cross.PointIntervals()); got != cross.K() {
		t.Fatalf("PointIntervals() returned %d entries, K %d", got, cross.K())
	}

	// Accessors return copies: mutating them must not change the digest.
	fp := cross.Fingerprint()
	cross.Ends()[0] = Boundary{Marker: 999, Count: 999}
	cross.PhaseOf()[0] = 999
	cross.PointIntervals()[0] = 999
	if cross.Fingerprint() != fp {
		t.Fatal("mutating accessor copies changed the fingerprint")
	}

	ps, err := cross.ForBinary(0)
	if err != nil {
		t.Fatal(err)
	}
	ps2, err := cross.ForBinary(0)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Fingerprint() != ps2.Fingerprint() {
		t.Fatal("identical point sets fingerprint differently")
	}
	mut := *ps
	mut.Weights = append([]float64(nil), ps.Weights...)
	mut.Weights[0] += 1e-15
	if mut.Fingerprint() == ps.Fingerprint() {
		t.Fatal("weight bit flip did not change the fingerprint")
	}
}
