// Package xbsim is a from-scratch reproduction of "Cross Binary Simulation
// Points" (Perelman, Lau, Hamerly, Patil, Jaleel, Calder — ISPASS 2007):
// SimPoint-style sampled simulation that picks a single set of simulation
// points usable across every binary compiled from one source program, so
// that ISA and compiler-optimization studies compare the same semantic
// regions of execution.
//
// The library bundles everything the paper's toolchain needed, rebuilt on
// a synthetic substrate (see DESIGN.md for the substitution table):
//
//   - synthetic SPEC2000-like benchmark programs and a four-target
//     compiler (32/64-bit × unoptimized/optimized);
//   - a Pin-like profiling layer over a deterministic executor;
//   - a full SimPoint 3.0 implementation (BBVs, random projection,
//     weighted k-means, BIC model selection);
//   - the paper's mappable-point discovery, including the inlined-loop
//     count heuristic;
//   - a CMP$im-like in-order core with the paper's three-level cache
//     hierarchy.
//
// # Quick start
//
//	bench, _ := xbsim.NewBenchmark("gcc", 2_000_000)
//	input := xbsim.Input{Name: "ref", Seed: 42}
//	cross, _ := xbsim.CrossBinaryPoints(bench.Binaries, input, xbsim.PointsConfig{})
//	for i, bin := range bench.Binaries {
//	    est, _ := xbsim.EstimateCPI(bin, input, cross.ForBinary(i), nil)
//	    full, _ := xbsim.SimulateFull(bin, input, nil)
//	    fmt.Printf("%s: est %.3f true %.3f\n", bin.Name, est, full.CPI())
//	}
//
// The experiment harness (RunExperiments / WriteReport) regenerates every
// table and figure of the paper's evaluation; see EXPERIMENTS.md.
package xbsim

import (
	"context"
	"fmt"
	"io"

	"xbsim/internal/bbv"
	"xbsim/internal/callloop"
	"xbsim/internal/cmpsim"
	"xbsim/internal/compiler"
	"xbsim/internal/exec"
	"xbsim/internal/experiment"
	"xbsim/internal/fingerprint"
	"xbsim/internal/mapping"
	"xbsim/internal/markerstats"
	"xbsim/internal/obs"
	"xbsim/internal/pinpoints"
	"xbsim/internal/pool"
	"xbsim/internal/profile"
	"xbsim/internal/program"
	"xbsim/internal/report"
	"xbsim/internal/sampler"
	"xbsim/internal/simpoint"
	"xbsim/internal/trace"
	"xbsim/internal/validate"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Program is a source-level benchmark program.
	Program = program.Program
	// Input names a program input; the seed drives all input-dependent
	// behavior deterministically.
	Input = program.Input
	// Target is a compilation configuration (architecture × opt level).
	Target = compiler.Target
	// Binary is a compiled program.
	Binary = compiler.Binary
	// Profile is a binary's call-and-branch profile.
	Profile = profile.Profile
	// MappingResult is the cross-binary mappable point set.
	MappingResult = mapping.Result
	// Boundary is a variable-length-interval end point: a mappable marker
	// plus its execution count at the cut.
	Boundary = profile.Boundary
	// MappingOptions tunes mappable-point discovery.
	MappingOptions = mapping.Options
	// Stats is a simulation result (CPI, cache behavior).
	Stats = cmpsim.Stats
	// HierarchyConfig describes the simulated memory system.
	HierarchyConfig = cmpsim.HierarchyConfig
	// ExperimentConfig parameterizes the paper-evaluation harness.
	ExperimentConfig = experiment.Config
	// RetryPolicy controls transient-failure retries per pipeline stage.
	RetryPolicy = experiment.RetryPolicy
	// Suite is a completed — possibly partial — paper evaluation.
	Suite = experiment.Suite
	// BenchmarkFailure records one benchmark a suite could not complete.
	BenchmarkFailure = experiment.BenchmarkFailure
	// RegionFile is a serializable PinPoints-style region descriptor.
	RegionFile = pinpoints.File
)

// IR construction types, for building custom programs by hand instead of
// using the benchmark generator. A Program built from these must pass
// (*Program).Validate before compilation.
type (
	// Proc is a procedure definition.
	Proc = program.Proc
	// Stmt is a procedure-body statement (Compute, Loop, or Call).
	Stmt = program.Stmt
	// Compute is a straight-line block of work.
	Compute = program.Compute
	// Loop repeats its body an input-dependent number of times.
	Loop = program.Loop
	// Call invokes another procedure.
	Call = program.Call
	// OpMix is a compute block's abstract operation mix.
	OpMix = program.OpMix
	// MemPattern describes a compute block's memory behavior.
	MemPattern = program.MemPattern
	// TripSpec determines a loop's iteration counts.
	TripSpec = program.TripSpec
)

// Memory access classes for MemPattern.
const (
	MemStride = program.MemStride
	MemRandom = program.MemRandom
)

// Compilation targets, in the paper's order: 32u, 32o, 64u, 64o.
var AllTargets = compiler.AllTargets

// Compile lowers a (validated) program for one target.
func Compile(p *Program, t Target) (*Binary, error) {
	return compiler.Compile(p, t)
}

// CompileAll lowers a program for all four paper targets.
func CompileAll(p *Program) ([]*Binary, error) {
	return compiler.CompileAll(p)
}

// Benchmarks returns the names of the synthesizable SPEC2000-like
// benchmarks (the paper's 21-program subset).
func Benchmarks() []string { return program.Benchmarks() }

// Spec is a randomized benchmark-generator configuration: a compact,
// canonical description of a synthetic program beyond the fixed
// benchmark table. Specs drive the metamorphic self-check harness and
// the fuzz targets.
type Spec = program.Spec

// RandomSpec draws the index-th spec from the seeded deterministic
// distribution. The same (seed, index) always yields the same spec.
func RandomSpec(seed uint64, index int) Spec { return program.RandomSpec(seed, index) }

// SpecFromBytes decodes an arbitrary byte string into a valid canonical
// spec; it is total, so fuzzers can feed it anything.
func SpecFromBytes(data []byte) Spec { return program.SpecFromBytes(data) }

// NewBenchmarkFromSpec generates the spec's synthetic program and
// compiles all four targets, like NewBenchmark for randomized specs.
func NewBenchmarkFromSpec(s Spec) (*Benchmark, error) {
	prog, err := program.GenerateSpec(s)
	if err != nil {
		return nil, err
	}
	bins, err := compiler.CompileAll(prog)
	if err != nil {
		return nil, err
	}
	return &Benchmark{Program: prog, Binaries: bins}, nil
}

// Table1 returns the paper's memory system configuration.
func Table1() HierarchyConfig { return cmpsim.DefaultHierarchyConfig() }

// Benchmark bundles a generated program with its four compiled binaries.
type Benchmark struct {
	// Program is the generated source program.
	Program *Program
	// Binaries holds the four compilations in AllTargets order.
	Binaries []*Binary
}

// NewBenchmark synthesizes the named benchmark scaled to roughly targetOps
// abstract operations (0 = default) and compiles all four targets.
func NewBenchmark(name string, targetOps uint64) (*Benchmark, error) {
	prog, err := program.Generate(name, program.GenConfig{TargetOps: targetOps})
	if err != nil {
		return nil, err
	}
	bins, err := compiler.CompileAll(prog)
	if err != nil {
		return nil, err
	}
	return &Benchmark{Program: prog, Binaries: bins}, nil
}

// Binary returns the compilation for the given configuration shorthand
// ("32u", "32o", "64u", "64o"), or nil.
func (b *Benchmark) Binary(target string) *Binary {
	for i, t := range AllTargets {
		if t.String() == target {
			return b.Binaries[i]
		}
	}
	return nil
}

// BBVDataset is an ordered collection of per-interval basic block
// vectors, ready for clustering or similarity analysis.
type BBVDataset = bbv.Dataset

// CollectIntervalBBVs profiles the binary into fixed-length-interval
// basic block vectors, the raw material for custom analyses (similarity
// matrices, alternative clusterings).
func CollectIntervalBBVs(bin *Binary, in Input, intervalSize uint64) (*BBVDataset, error) {
	fc, err := profile.NewFLICollector(bin, intervalSize)
	if err != nil {
		return nil, err
	}
	if err := exec.Run(bin, in, fc); err != nil {
		return nil, err
	}
	return fc.Finish().Dataset, nil
}

// CollectProfile runs the binary once and returns its call-and-branch
// profile (procedure entry counts, loop entry/body counts, debug info).
func CollectProfile(bin *Binary, in Input) (*Profile, error) {
	return profile.Collect(bin, in)
}

// CollectProfileCtx is CollectProfile with observability: the profiling
// execution is recorded through the context's Observer, if any.
func CollectProfileCtx(ctx context.Context, bin *Binary, in Input) (*Profile, error) {
	return profile.CollectCtx(ctx, bin, in)
}

// FindMappablePoints profiles every binary and computes the cross-binary
// mappable point set (paper §3.2.1-§3.2.2, plus the §3.3 inlining
// heuristic unless disabled).
func FindMappablePoints(bins []*Binary, in Input, opts MappingOptions) (*MappingResult, error) {
	return FindMappablePointsCtx(context.Background(), bins, in, opts)
}

// FindMappablePointsCtx is FindMappablePoints with observability: when the
// context carries an Observer (see WithObserver), profiling and matching
// are traced and mapping counters recorded.
func FindMappablePointsCtx(ctx context.Context, bins []*Binary, in Input, opts MappingOptions) (*MappingResult, error) {
	pctx, pspan := obs.StartSpan(ctx, "stage.profile")
	profiles := make([]*profile.Profile, len(bins))
	for i, bin := range bins {
		p, err := profile.CollectCtx(pctx, bin, in)
		if err != nil {
			pspan.End()
			return nil, err
		}
		profiles[i] = p
	}
	pspan.End()
	return mapping.FindCtx(ctx, profiles, opts)
}

// PointsConfig tunes simulation point selection.
type PointsConfig struct {
	// IntervalSize is the interval size in instructions (FLI size, or VLI
	// minimum). 0 = 100_000.
	IntervalSize uint64
	// MaxK caps the number of phases (0 = 10, the paper's setting).
	MaxK int
	// Dim is the projection dimensionality (0 = 15).
	Dim int
	// BICThreshold is SimPoint's model selection knob (0 = 0.9).
	BICThreshold float64
	// Seed names the random stream (""= "xbsim").
	Seed string
	// EarlyTolerance > 0 picks early simulation points: the earliest
	// interval within (1 + tolerance) of the centroid-closest one.
	EarlyTolerance float64
	// Sampler selects the point-selection backend: "" or "simpoint" for
	// the SimPoint k-means picker, "stratified" for two-phase stratified
	// sampling (cheap-pass stratification + Neyman-allocated
	// deep-simulation budget; see internal/sampler).
	Sampler string
	// SamplerBudget is the stratified backend's total simulation-point
	// budget (0 = backend default of 12). Ignored by SimPoint.
	SamplerBudget int
	// SamplerStrata caps the stratified backend's stratum count (0 =
	// backend default of 8). Ignored by SimPoint.
	SamplerStrata int
	// Mapping tunes mappable-point discovery (cross-binary only).
	Mapping MappingOptions
	// Workers bounds the worker pool used for the clustering sweep and
	// its k-means restarts. The results are bit-identical for every
	// value; Workers trades only wall clock. 0 = GOMAXPROCS, 1 = serial.
	Workers int
}

func (c PointsConfig) withDefaults() PointsConfig {
	if c.IntervalSize == 0 {
		c.IntervalSize = 100_000
	}
	if c.Seed == "" {
		c.Seed = "xbsim"
	}
	return c
}

func (c PointsConfig) samplerConfig(seed string) sampler.Config {
	return sampler.Config{
		MaxK: c.MaxK, Dim: c.Dim, BICThreshold: c.BICThreshold, Seed: seed,
		EarlyTolerance: c.EarlyTolerance,
		Pool:           pool.New(c.Workers),
		Budget:         c.SamplerBudget,
		Strata:         c.SamplerStrata,
	}
}

// PointSet is a chosen set of simulation regions for one binary, ready to
// simulate or serialize.
type PointSet struct {
	// Binary the regions apply to.
	Binary *Binary
	// Flavor is FLI (per-binary) or VLI (cross-binary mapped).
	Flavor pinpoints.Flavor
	// K is the number of phases; Weights[p] the phase weights.
	Weights []float64
	// PointInterval[p] is the representative interval per phase (-1 when
	// the phase has no representative).
	PointInterval []int
	// PhaseOf labels every interval with its phase.
	PhaseOf []int

	intervalSize uint64
	fliEnds      []uint64
	vliEnds      []profile.Boundary
}

// NumPoints returns the number of simulation points.
func (ps *PointSet) NumPoints() int {
	n := 0
	for _, iv := range ps.PointInterval {
		if iv >= 0 {
			n++
		}
	}
	return n
}

// Fingerprint digests everything that determines the point set's
// simulation behavior: flavor, weights (by exact float bits), chosen
// intervals, phase labels, and the interval boundaries. Two point sets
// drive identical sampled simulations exactly when their fingerprints
// match; the self-check harness compares fingerprints across
// metamorphic pipeline variants (permuted binary order, different
// worker counts).
func (ps *PointSet) Fingerprint() string {
	h := fingerprint.New()
	h.String(string(ps.Flavor))
	h.Uint64(ps.intervalSize)
	h.Float64s(ps.Weights)
	h.Ints(ps.PointInterval)
	h.Ints(ps.PhaseOf)
	h.Int(len(ps.fliEnds))
	for _, e := range ps.fliEnds {
		h.Uint64(e)
	}
	h.Int(len(ps.vliEnds))
	for _, e := range ps.vliEnds {
		h.Int(e.Marker)
		h.Uint64(e.Count)
	}
	return h.Sum()
}

// PerBinaryPoints runs classic per-binary SimPoint on the binary: fixed
// length intervals, BBV clustering, one representative per phase (§2).
func PerBinaryPoints(bin *Binary, in Input, cfg PointsConfig) (*PointSet, error) {
	return PerBinaryPointsCtx(context.Background(), bin, in, cfg)
}

// PerBinaryPointsCtx is PerBinaryPoints with observability: profiling,
// projection, and clustering are traced through the context's Observer.
func PerBinaryPointsCtx(ctx context.Context, bin *Binary, in Input, cfg PointsConfig) (*PointSet, error) {
	cfg = cfg.withDefaults()
	fc, err := profile.NewFLICollector(bin, cfg.IntervalSize)
	if err != nil {
		return nil, err
	}
	pctx, pspan := obs.StartSpan(ctx, "stage.profile")
	pspan.Annotate(bin.Name)
	if err := exec.RunCtx(pctx, bin, in, fc); err != nil {
		pspan.End()
		return nil, err
	}
	pspan.End()
	res := fc.Finish()
	smp, err := sampler.New(cfg.Sampler)
	if err != nil {
		return nil, err
	}
	pick, err := smp.Pick(ctx, res.Dataset, cfg.samplerConfig(cfg.Seed+"/fli/"+bin.Name))
	if err != nil {
		return nil, err
	}
	return &PointSet{
		Binary:        bin,
		Flavor:        pinpoints.FlavorFLI,
		Weights:       append([]float64(nil), pick.PhaseWeights...),
		PointInterval: pointIntervals(pick),
		PhaseOf:       pick.PhaseOf,
		intervalSize:  cfg.IntervalSize,
		fliEnds:       res.Ends,
	}, nil
}

func pointIntervals(pick *simpoint.Result) []int {
	out := make([]int, pick.K)
	for p := range out {
		out[p] = -1
	}
	for _, pt := range pick.Points {
		out[pt.Phase] = pt.Interval
	}
	return out
}

// CrossPoints is a cross-binary simulation point set: one clustering on
// the primary binary, mapped to every binary via mappable markers.
type CrossPoints struct {
	// Mapping is the mappable point set used for boundaries.
	Mapping *MappingResult
	// Primary is the index of the primary binary.
	Primary int

	input        Input
	intervalSize uint64
	pick         *simpoint.Result
	primaryEnds  []profile.Boundary
}

// CrossBinaryPoints runs the paper's §3 pipeline over the binaries: find
// mappable points, break the primary binary (index 0) into variable
// length intervals at those points, cluster with SimPoint, and prepare
// the mapped regions for every binary.
func CrossBinaryPoints(bins []*Binary, in Input, cfg PointsConfig) (*CrossPoints, error) {
	return CrossBinaryPointsCtx(context.Background(), bins, in, cfg)
}

// CrossBinaryPointsCtx is CrossBinaryPoints with observability: mapping,
// VLI slicing, projection, and clustering are traced through the context's
// Observer, and mapping/interval counters recorded.
func CrossBinaryPointsCtx(ctx context.Context, bins []*Binary, in Input, cfg PointsConfig) (*CrossPoints, error) {
	cfg = cfg.withDefaults()
	mapped, err := FindMappablePointsCtx(ctx, bins, in, cfg.Mapping)
	if err != nil {
		return nil, err
	}
	const primary = 0
	vc, err := profile.NewVLICollector(bins[primary], cfg.IntervalSize, mapped.MarkersFor(primary))
	if err != nil {
		return nil, err
	}
	vctx, vspan := obs.StartSpan(ctx, "stage.vli_slicing")
	vspan.Annotate(bins[primary].Name)
	if err := exec.RunCtx(vctx, bins[primary], in, vc); err != nil {
		vspan.End()
		return nil, err
	}
	vspan.End()
	res := vc.Finish()
	smp, err := sampler.New(cfg.Sampler)
	if err != nil {
		return nil, err
	}
	pick, err := smp.Pick(ctx, res.Dataset, cfg.samplerConfig(cfg.Seed+"/vli/"+bins[primary].Program.Name))
	if err != nil {
		return nil, err
	}
	return &CrossPoints{
		Mapping:      mapped,
		Primary:      primary,
		input:        in,
		intervalSize: cfg.IntervalSize,
		pick:         pick,
		primaryEnds:  res.Ends,
	}, nil
}

// K returns the number of phases.
func (cp *CrossPoints) K() int { return cp.pick.K }

// NumIntervals returns the shared interval count.
func (cp *CrossPoints) NumIntervals() int { return len(cp.primaryEnds) }

// Ends returns a copy of the variable-length-interval boundaries in the
// primary binary's marker space. Every boundary is a mappable marker
// plus its execution count, translatable to any binary via the Mapping.
func (cp *CrossPoints) Ends() []Boundary {
	return append([]Boundary(nil), cp.primaryEnds...)
}

// PhaseOf returns a copy of the per-interval phase labels.
func (cp *CrossPoints) PhaseOf() []int {
	return append([]int(nil), cp.pick.PhaseOf...)
}

// PointIntervals returns the representative interval per phase (-1 when
// a phase has no representative).
func (cp *CrossPoints) PointIntervals() []int {
	return pointIntervals(cp.pick)
}

// Fingerprint digests the complete cross-binary analysis: the clustering
// result, the primary-binary interval boundaries, and the per-binary
// mapping views. Because the clustering runs only on the primary binary
// and point order is binary-order independent, the fingerprint is
// bit-identical across runs with any Workers value.
func (cp *CrossPoints) Fingerprint() string {
	h := fingerprint.New()
	h.Int(cp.Primary)
	h.Uint64(cp.intervalSize)
	h.String(cp.pick.Fingerprint())
	h.Int(len(cp.primaryEnds))
	for _, e := range cp.primaryEnds {
		h.Int(e.Marker)
		h.Uint64(e.Count)
	}
	h.Int(len(cp.Mapping.Binaries))
	for b := range cp.Mapping.Binaries {
		h.String(cp.Mapping.Binaries[b].Name)
		h.String(cp.Mapping.FingerprintFor(b))
	}
	return h.Sum()
}

// ForBinary maps the simulation points into binary b's marker space and
// recalculates the phase weights by counting the instructions each phase
// executes in that binary (§3.2.5-§3.2.6). The returned PointSet is ready
// for EstimateCPI.
func (cp *CrossPoints) ForBinary(b int) (*PointSet, error) {
	if b < 0 || b >= len(cp.Mapping.Binaries) {
		return nil, fmt.Errorf("xbsim: binary index %d out of range [0,%d)", b, len(cp.Mapping.Binaries))
	}
	bin := cp.Mapping.Binaries[b]
	ends, err := cp.Mapping.TranslateEnds(cp.Primary, b, cp.primaryEnds)
	if err != nil {
		return nil, err
	}
	// Weight recalculation pass: count instructions per interval in this
	// binary.
	tr := profile.NewVLITracker(bin, ends, nil)
	if err := exec.Run(bin, cp.input, tr); err != nil {
		return nil, err
	}
	var total uint64
	for _, n := range tr.Instructions {
		total += n
	}
	if total == 0 {
		return nil, fmt.Errorf("xbsim: %s executed no instructions on input %q; cannot recalculate phase weights", bin.Name, cp.input.Name)
	}
	weights := make([]float64, cp.pick.K)
	for iv, phase := range cp.pick.PhaseOf {
		weights[phase] += float64(tr.Instructions[iv]) / float64(total)
	}
	return &PointSet{
		Binary:        bin,
		Flavor:        pinpoints.FlavorVLI,
		Weights:       weights,
		PointInterval: pointIntervals(cp.pick),
		PhaseOf:       cp.pick.PhaseOf,
		intervalSize:  cp.intervalSize,
		vliEnds:       ends,
	}, nil
}

// SimulateFull runs the binary to completion on the cache simulator and
// returns the whole-program statistics. hierarchy == nil uses Table 1.
func SimulateFull(bin *Binary, in Input, hierarchy *HierarchyConfig) (*Stats, error) {
	return SimulateFullCtx(context.Background(), bin, in, hierarchy)
}

// SimulateFullCtx is SimulateFull with observability: the run is recorded
// as a "stage.full_sim" span and the simulator's statistics are published
// under the "sim" metric prefix.
func SimulateFullCtx(ctx context.Context, bin *Binary, in Input, hierarchy *HierarchyConfig) (*Stats, error) {
	sim, err := newSim(bin, hierarchy)
	if err != nil {
		return nil, err
	}
	fctx, fspan := obs.StartSpan(ctx, "stage.full_sim")
	fspan.Annotate(bin.Name)
	if err := exec.RunCtx(fctx, bin, in, sim); err != nil {
		fspan.End()
		return nil, err
	}
	fspan.End()
	if o := obs.From(ctx); o != nil {
		sim.PublishMetrics(o.Metrics, "sim")
	}
	return sim.Stats(), nil
}

func newSim(bin *Binary, hierarchy *HierarchyConfig) (*cmpsim.Simulator, error) {
	cfg := cmpsim.DefaultHierarchyConfig()
	if hierarchy != nil {
		cfg = *hierarchy
	}
	return cmpsim.NewSimulator(bin, cfg)
}

// SampledEstimate is a whole-program estimate computed as the weighted
// average of per-simulation-point measurements (the paper's §2.3 step 6,
// applied to "CPI, miss rate, etc.").
type SampledEstimate struct {
	// CPI is the estimated cycles per instruction.
	CPI float64
	// L1MissRate is the estimated L1 data miss rate (misses / accesses).
	L1MissRate float64
	// DRAMPerKI is the estimated DRAM accesses per 1000 instructions.
	DRAMPerKI float64
}

// EstimateCPI simulates only the point set's regions (fast-forwarding
// with functional cache warming between them, as CMP$im does) and returns
// the weighted whole-program CPI estimate. hierarchy == nil uses Table 1.
func EstimateCPI(bin *Binary, in Input, ps *PointSet, hierarchy *HierarchyConfig) (float64, error) {
	est, err := EstimateStats(bin, in, ps, hierarchy)
	if err != nil {
		return 0, err
	}
	return est.CPI, nil
}

// EstimateCPICtx is EstimateCPI with observability (see EstimateStatsCtx).
func EstimateCPICtx(ctx context.Context, bin *Binary, in Input, ps *PointSet, hierarchy *HierarchyConfig) (float64, error) {
	est, err := EstimateStatsCtx(ctx, bin, in, ps, hierarchy)
	if err != nil {
		return 0, err
	}
	return est.CPI, nil
}

// EstimateStats is EstimateCPI generalized to the other whole-program
// metrics SimPoint users extrapolate: L1 miss rate and DRAM traffic.
func EstimateStats(bin *Binary, in Input, ps *PointSet, hierarchy *HierarchyConfig) (*SampledEstimate, error) {
	return EstimateStatsCtx(context.Background(), bin, in, ps, hierarchy)
}

// EstimateStatsCtx is EstimateStats with observability: the region-gated
// walk is recorded as a "stage.gated_sim" span and the simulator's
// statistics are published under the "sim.gated" metric prefix.
func EstimateStatsCtx(ctx context.Context, bin *Binary, in Input, ps *PointSet, hierarchy *HierarchyConfig) (*SampledEstimate, error) {
	if ps.Binary != bin {
		return nil, fmt.Errorf("xbsim: point set belongs to %s, not %s", ps.Binary.Name, bin.Name)
	}
	sim, err := newSim(bin, hierarchy)
	if err != nil {
		return nil, err
	}
	gctx, gspan := obs.StartSpan(ctx, "stage.gated_sim")
	gspan.Annotate(bin.Name)
	perInterval, err := simulateRegions(gctx, bin, in, sim, ps)
	gspan.End()
	if err != nil {
		return nil, err
	}
	if o := obs.From(ctx); o != nil {
		sim.PublishMetrics(o.Metrics, "sim.gated")
	}
	var est SampledEstimate
	var wsum float64
	for p, iv := range ps.PointInterval {
		if iv < 0 || ps.Weights[p] <= 0 {
			continue
		}
		st, ok := perInterval[iv]
		if !ok || st.instr == 0 {
			return nil, fmt.Errorf("xbsim: simulation point interval %d executed nothing", iv)
		}
		w := ps.Weights[p]
		est.CPI += w * float64(st.cycles) / float64(st.instr)
		if st.accesses > 0 {
			est.L1MissRate += w * float64(st.l1Misses) / float64(st.accesses)
		}
		est.DRAMPerKI += w * float64(st.dram) / float64(st.instr) * 1000
		wsum += w
	}
	if wsum <= 0 {
		return nil, fmt.Errorf("xbsim: no usable simulation points")
	}
	est.CPI /= wsum
	est.L1MissRate /= wsum
	est.DRAMPerKI /= wsum
	return &est, nil
}

type regionStat struct {
	instr, cycles      uint64
	accesses, l1Misses uint64
	dram               uint64
}

// regionGate gates the simulator to the chosen intervals and records
// per-interval deltas.
type regionGate struct {
	sim     *cmpsim.Simulator
	chosen  map[int]bool
	cur     int
	last    regionStat
	regions map[int]regionStat
}

// Transition implements profile.IntervalSink.
func (g *regionGate) Transition(i int) {
	if i == g.cur {
		return
	}
	g.flush()
	g.cur = i
	g.sim.SetEnabled(g.chosen[i])
}

func (g *regionGate) flush() {
	st := g.sim.Stats()
	now := regionStat{
		instr:    st.Instructions,
		cycles:   st.Cycles,
		accesses: st.Loads + st.Stores,
		l1Misses: st.LevelMisses[0],
		dram:     st.MemoryAccesses,
	}
	if g.chosen[g.cur] {
		r := g.regions[g.cur]
		r.instr += now.instr - g.last.instr
		r.cycles += now.cycles - g.last.cycles
		r.accesses += now.accesses - g.last.accesses
		r.l1Misses += now.l1Misses - g.last.l1Misses
		r.dram += now.dram - g.last.dram
		g.regions[g.cur] = r
	}
	g.last = now
}

func simulateRegions(ctx context.Context, bin *Binary, in Input, sim *cmpsim.Simulator, ps *PointSet) (map[int]regionStat, error) {
	chosen := map[int]bool{}
	for _, iv := range ps.PointInterval {
		if iv >= 0 {
			chosen[iv] = true
		}
	}
	gate := &regionGate{sim: sim, chosen: chosen, regions: map[int]regionStat{}}
	sim.SetEnabled(chosen[0])
	var tracker exec.Visitor
	switch ps.Flavor {
	case pinpoints.FlavorFLI:
		tracker = profile.NewFLITracker(bin, ps.fliEnds, gate)
	case pinpoints.FlavorVLI:
		tracker = profile.NewVLITracker(bin, ps.vliEnds, gate)
	default:
		return nil, fmt.Errorf("xbsim: unknown flavor %q", ps.Flavor)
	}
	if err := exec.RunCtx(ctx, bin, in, exec.Multi{sim, tracker}); err != nil {
		return nil, err
	}
	gate.flush()
	return gate.regions, nil
}

// RegionFile serializes the point set in PinPoints style for hand-off to
// external simulators.
func (ps *PointSet) RegionFile(in Input) (*RegionFile, error) {
	f := &RegionFile{
		Program:      ps.Binary.Program.Name,
		Binary:       ps.Binary.Name,
		Input:        in.Name,
		Flavor:       ps.Flavor,
		IntervalSize: ps.intervalSize,
	}
	for p, iv := range ps.PointInterval {
		if iv < 0 {
			continue
		}
		r := pinpoints.Region{Phase: p, Weight: ps.Weights[p], Interval: iv}
		switch ps.Flavor {
		case pinpoints.FlavorFLI:
			if iv > 0 {
				r.StartInstr = ps.fliEnds[iv-1]
			}
			r.EndInstr = ps.fliEnds[iv]
		case pinpoints.FlavorVLI:
			start := profile.BoundaryStart
			if iv > 0 {
				start = ps.vliEnds[iv-1]
			}
			r.Start = pinpoints.FromProfileBoundary(start)
			r.End = pinpoints.FromProfileBoundary(ps.vliEnds[iv])
		}
		f.Regions = append(f.Regions, r)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// Analysis and tooling types.
type (
	// Visitor observes a binary's dynamic execution (see exec.Visitor).
	Visitor = exec.Visitor
	// CoreConfig models the simulated in-order core.
	CoreConfig = cmpsim.CoreConfig
	// MarkerStat summarizes one marker's firing periodicity.
	MarkerStat = markerstats.Stat
	// CallLoopGraph is the annotated call-loop structure of a program.
	CallLoopGraph = callloop.Graph
	// ValidationReport lists the cross-binary invariant checks.
	ValidationReport = validate.Report
	// TraceHeader describes a stored execution trace.
	TraceHeader = trace.Header
)

// DefaultCore returns the paper's core configuration (single-issue,
// 2-cycle FP, buffered stores).
func DefaultCore() CoreConfig { return cmpsim.DefaultCoreConfig() }

// SimulateFullWithCore is SimulateFull with an explicit core model, for
// design-space studies that vary the core. hierarchy == nil uses Table 1.
func SimulateFullWithCore(bin *Binary, in Input, hierarchy *HierarchyConfig, core CoreConfig) (*Stats, error) {
	cfg := cmpsim.DefaultHierarchyConfig()
	if hierarchy != nil {
		cfg = *hierarchy
	}
	sim, err := cmpsim.NewSimulatorWithCore(bin, cfg, core)
	if err != nil {
		return nil, err
	}
	if err := exec.Run(bin, in, sim); err != nil {
		return nil, err
	}
	return sim.Stats(), nil
}

// CollectMarkerStats gathers per-marker firing-gap statistics (mean gap,
// coefficient of variation) — the phase-marker periodicity analysis.
func CollectMarkerStats(bin *Binary, in Input) ([]MarkerStat, error) {
	return markerstats.Collect(bin, in)
}

// RankMarkers orders marker statistics by suitability as interval
// boundaries for the target size.
func RankMarkers(stats []MarkerStat, targetSize uint64) []MarkerStat {
	return markerstats.RankForInterval(stats, targetSize)
}

// BuildCallLoopGraph builds the annotated call-loop graph of the binary's
// program (use an unoptimized binary: its structure is complete).
func BuildCallLoopGraph(bin *Binary, in Input) (*CallLoopGraph, error) {
	return callloop.Build(bin, in)
}

// Verify checks the cross-binary invariants (determinism, count equality,
// interval coverage) hold for this workload before trusting sampled
// numbers from it.
func Verify(bins []*Binary, in Input, intervalSize uint64) (*ValidationReport, error) {
	return validate.CrossBinary(bins, in, intervalSize)
}

// RecordTrace executes the binary and writes its block/marker event trace
// in the compact xbsim trace format.
func RecordTrace(w io.Writer, bin *Binary, in Input) error {
	return trace.Record(w, bin, in)
}

// ReplayTrace streams a recorded trace into the visitor, a drop-in
// substitute for live execution.
func ReplayTrace(r io.Reader, bin *Binary, v Visitor) (*TraceHeader, error) {
	return trace.Replay(r, bin, v)
}

// QuickExperimentConfig returns the reduced five-benchmark evaluation
// configuration; FullExperimentConfig the paper-shaped 21-benchmark one.
func QuickExperimentConfig() ExperimentConfig { return experiment.QuickConfig() }

// FullExperimentConfig returns the paper-shaped configuration: all 21
// benchmarks, four binaries each.
func FullExperimentConfig() ExperimentConfig { return experiment.FullConfig() }

// RunExperiments executes the paper evaluation for the configuration.
func RunExperiments(cfg ExperimentConfig) (*Suite, error) {
	return experiment.Run(cfg)
}

// RunExperimentsCtx is RunExperiments with observability: when the context
// carries an Observer (see WithObserver), every pipeline stage of every
// benchmark is traced, the metrics registry accumulates pipeline counters,
// and per-benchmark completion is reported as progress events.
func RunExperimentsCtx(ctx context.Context, cfg ExperimentConfig) (*Suite, error) {
	return experiment.RunCtx(ctx, cfg)
}

// WriteReport renders Table 1, Figures 1-5, and the Table 2/3 phase
// comparisons for the suite.
func WriteReport(w io.Writer, s *Suite) error {
	return report.Suite(w, s)
}

// WriteReportCtx is WriteReport plus an observability appendix: when the
// context carries an Observer, the stage-timing tree and the metrics
// snapshot it accumulated are appended after the paper artifacts. Without
// an observer the output is identical to WriteReport.
func WriteReportCtx(ctx context.Context, w io.Writer, s *Suite) error {
	if err := report.Suite(w, s); err != nil {
		return err
	}
	return report.Appendix(w, obs.From(ctx))
}

// Observability types, re-exported from the internal obs package. An
// Observer travels on a context.Context (WithObserver) and is consumed by
// the *Ctx variants of the pipeline entry points; a nil Observer — or a
// plain context — records nothing and costs nothing.
type (
	// Observer bundles a metrics registry, a tracer, and a progress sink.
	Observer = obs.Observer
	// MetricsSnapshot is a point-in-time copy of every recorded metric.
	MetricsSnapshot = obs.Snapshot
	// ProgressEvent is one coarse progress update from the pipeline.
	ProgressEvent = obs.Event
)

// NewObserver returns an Observer with a fresh metrics registry and
// tracer. Attach a progress sink with obs := NewObserver();
// obs.Progress = NewProgressWriter(os.Stderr).
func NewObserver() *Observer { return obs.New() }

// NewProgressWriter returns a progress sink that renders one line per
// event to w.
func NewProgressWriter(w io.Writer) *obs.Progress { return obs.NewProgress(w) }

// WithObserver returns a context carrying the observer; pipeline *Ctx
// functions called with it record metrics, spans, and progress.
func WithObserver(ctx context.Context, o *Observer) context.Context {
	return obs.With(ctx, o)
}

// ObserverFrom returns the context's observer, or nil.
func ObserverFrom(ctx context.Context) *Observer {
	return obs.From(ctx)
}
