package xbsim

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden simulation-point files")

// goldenPoints pins one clustering outcome: the chosen k, the
// representative interval per phase, every interval's phase label, and
// the bit-exact analysis fingerprint.
type goldenPoints struct {
	K              int    `json:"k"`
	NumIntervals   int    `json:"num_intervals"`
	PointIntervals []int  `json:"point_intervals"`
	PhaseOf        []int  `json:"phase_of"`
	Fingerprint    string `json:"fingerprint"`
}

// goldenFile is one benchmark's pinned simulation points: the
// cross-binary (VLI) selection with its per-binary point-set
// fingerprints, and the classic per-binary (FLI) selection on 32u.
type goldenFile struct {
	Benchmark          string            `json:"benchmark"`
	VLI                goldenPoints      `json:"vli"`
	BinaryFingerprints map[string]string `json:"binary_fingerprints"`
	FLI32u             goldenPoints      `json:"fli_32u"`
}

// TestGoldenSimulationPoints regresses the chosen simulation points for
// the seed benchmarks against testdata/golden. Any change to the
// pipeline that moves a simulation point, relabels a phase, or perturbs
// a weight bit shows up as a diff here. Refresh intentionally with:
//
//	go test -run TestGoldenSimulationPoints -update .
func TestGoldenSimulationPoints(t *testing.T) {
	goldenPointsTest(t, testPointsConfig(), "")
}

// TestGoldenStratifiedPoints pins the stratified backend's picks the
// same way: the pipeline is shared, only point selection differs, so a
// drifted stratum boundary, budget allocation, or per-segment draw
// shows up as a diff against testdata/golden/stratified-<name>.json.
func TestGoldenStratifiedPoints(t *testing.T) {
	cfg := testPointsConfig()
	cfg.Sampler = "stratified"
	goldenPointsTest(t, cfg, "stratified-")
}

// goldenPointsTest regresses the chosen simulation points for the seed
// benchmarks under one sampler configuration against
// testdata/golden/<prefix><name>.json.
func goldenPointsTest(t *testing.T, cfg PointsConfig, prefix string) {
	for _, name := range []string{"gcc", "apsi", "applu", "mcf", "swim"} {
		t.Run(name, func(t *testing.T) {
			b := testBenchmark(t, name)
			cross, err := CrossBinaryPoints(b.Binaries, testInput, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := goldenFile{
				Benchmark: name,
				VLI: goldenPoints{
					K:              cross.K(),
					NumIntervals:   cross.NumIntervals(),
					PointIntervals: cross.PointIntervals(),
					PhaseOf:        cross.PhaseOf(),
					Fingerprint:    cross.Fingerprint(),
				},
				BinaryFingerprints: map[string]string{},
			}
			for bi, bin := range b.Binaries {
				ps, err := cross.ForBinary(bi)
				if err != nil {
					t.Fatal(err)
				}
				got.BinaryFingerprints[bin.Name] = ps.Fingerprint()
			}
			fli, err := PerBinaryPoints(b.Binary("32u"), testInput, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got.FLI32u = goldenPoints{
				K:              len(fli.Weights),
				NumIntervals:   len(fli.PhaseOf),
				PointIntervals: fli.PointInterval,
				PhaseOf:        fli.PhaseOf,
				Fingerprint:    fli.Fingerprint(),
			}

			path := filepath.Join("testdata", "golden", prefix+name+".json")
			if *updateGolden {
				data, err := json.MarshalIndent(&got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			var want goldenFile
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				gotJSON, _ := json.MarshalIndent(&got, "", "  ")
				t.Errorf("simulation points drifted from %s;\nre-run with -update if intentional\ngot:\n%s",
					path, gotJSON)
			}
		})
	}
}
