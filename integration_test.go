package xbsim

// Integration tests: invariants that span several subsystems at once.

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"xbsim/internal/exec"
	"xbsim/internal/experiment"
	"xbsim/internal/profile"
	"xbsim/internal/simpoint"
	"xbsim/internal/trace"
)

// TestSuiteBitReproducible runs the reduced evaluation twice and demands
// identical figures: every stochastic component must be driven by named
// streams only.
func TestSuiteBitReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the suite twice")
	}
	cfg := experiment.QuickConfig()
	cfg.Benchmarks = []string{"swim", "gcc"}
	cfg.TargetOps = 500_000
	cfg.IntervalSize = 8_000
	run := func() []*experiment.Figure {
		s, err := experiment.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s.Figures()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical suite runs produced different figures")
	}
}

// TestTraceDrivenSimPointMatchesLive records a trace, collects interval
// BBVs from the replay, and verifies SimPoint picks identical points —
// i.e. the offline (trace-driven) and online workflows are equivalent.
func TestTraceDrivenSimPointMatchesLive(t *testing.T) {
	bench := testBenchmark(t, "vpr")
	bin := bench.Binary("32o")

	var buf bytes.Buffer
	if err := trace.Record(&buf, bin, testInput); err != nil {
		t.Fatal(err)
	}

	collect := func(driver func(v exec.Visitor) error) *simpoint.Result {
		t.Helper()
		fc, err := profile.NewFLICollector(bin, 8_000)
		if err != nil {
			t.Fatal(err)
		}
		if err := driver(fc); err != nil {
			t.Fatal(err)
		}
		pick, err := simpoint.Pick(fc.Finish().Dataset, simpoint.Config{Seed: "trace-vs-live"})
		if err != nil {
			t.Fatal(err)
		}
		return pick
	}
	live := collect(func(v exec.Visitor) error { return exec.Run(bin, testInput, v) })
	replayed := collect(func(v exec.Visitor) error {
		_, err := trace.Replay(bytes.NewReader(buf.Bytes()), bin, v)
		return err
	})
	if live.K != replayed.K || !reflect.DeepEqual(live.Points, replayed.Points) {
		t.Fatalf("trace-driven SimPoint differs from live:\n%+v\n%+v", live.Points, replayed.Points)
	}
}

// TestConsistentBiasProperty verifies the paper's core mechanism directly:
// across the four binaries, the spread of the VLI estimator's relative
// bias must be smaller than the FLI estimator's spread (consistent bias is
// what makes cross-binary ratios accurate).
func TestConsistentBiasProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline over several benchmarks")
	}
	cfg := experiment.QuickConfig()
	cfg.Benchmarks = []string{"swim", "crafty", "mcf", "sixtrack"}
	cfg.TargetOps = 1_000_000
	cfg.IntervalSize = 10_000
	suite, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(r *experiment.BenchmarkResult, vli bool) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, run := range r.Runs {
			ms := run.FLI
			if vli {
				ms = run.VLI
			}
			bias := (ms.EstCPI - run.TrueCPI) / run.TrueCPI
			lo = math.Min(lo, bias)
			hi = math.Max(hi, bias)
		}
		return hi - lo
	}
	var fliTotal, vliTotal float64
	for _, r := range suite.Results {
		fliTotal += spread(r, false)
		vliTotal += spread(r, true)
	}
	if vliTotal >= fliTotal {
		t.Fatalf("VLI bias spread (%.4f) not below FLI (%.4f) across the sample",
			vliTotal, fliTotal)
	}
}

// TestEstimateStatsAgainstFullRun checks the generalized estimator: the
// estimated L1 miss rate and DRAM traffic must track full-run truth.
func TestEstimateStatsAgainstFullRun(t *testing.T) {
	bench := testBenchmark(t, "mcf")
	bin := bench.Binary("32o")
	ps, err := PerBinaryPoints(bin, testInput, testPointsConfig())
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateStats(bin, testInput, ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := SimulateFull(bin, testInput, nil)
	if err != nil {
		t.Fatal(err)
	}
	trueMR := full.MissRate(0)
	if trueMR <= 0 {
		t.Fatal("mcf has no L1 misses?")
	}
	if rel := math.Abs(est.L1MissRate-trueMR) / trueMR; rel > 0.4 {
		t.Fatalf("L1 miss rate estimate %.4f vs true %.4f (%.0f%% off)",
			est.L1MissRate, trueMR, rel*100)
	}
	trueDPKI := float64(full.MemoryAccesses) / float64(full.Instructions) * 1000
	if trueDPKI <= 0 {
		t.Fatal("mcf never reached DRAM?")
	}
	if rel := math.Abs(est.DRAMPerKI-trueDPKI) / trueDPKI; rel > 0.4 {
		t.Fatalf("DRAM/KI estimate %.3f vs true %.3f (%.0f%% off)",
			est.DRAMPerKI, trueDPKI, rel*100)
	}
}

// TestWarmingOffDegradesCacheSensitiveEstimate drives the warming knob
// end-to-end: without functional warming, mcf's region estimates acquire
// cold-start bias.
func TestWarmingOffDegradesCacheSensitiveEstimate(t *testing.T) {
	cfg := experiment.QuickConfig()
	cfg.Benchmarks = []string{"mcf"}
	cfg.TargetOps = 800_000
	cfg.IntervalSize = 8_000

	errFor := func(disable bool) float64 {
		c := cfg
		c.DisableWarming = disable
		s, err := experiment.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, run := range s.Results[0].Runs {
			sum += run.VLI.CPIError
		}
		return sum / 4
	}
	warm, cold := errFor(false), errFor(true)
	if cold < warm {
		t.Fatalf("cold fast-forward improved mcf CPI error: %.4f -> %.4f", warm, cold)
	}
}
