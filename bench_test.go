package xbsim

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the per-experiment index). Each
// Benchmark* function rebuilds its artifact from a shared quick-scale
// evaluation suite and prints the rows once, so
//
//	go test -bench=. -benchmem
//
// both measures the artifact computations and emits the reproduced
// tables/figures. The full-scale sweep (all 21 benchmarks) is available
// through `go run ./cmd/xbsim figures`.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"xbsim/internal/experiment"
	"xbsim/internal/report"
)

var (
	suiteOnce sync.Once
	suiteVal  *experiment.Suite
	suiteErr  error

	printOnceMu sync.Mutex
	printedKeys = map[string]bool{}
)

// benchSuite lazily runs the quick evaluation once per test binary.
func benchSuite(b *testing.B) *experiment.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suiteVal, suiteErr = experiment.Run(experiment.QuickConfig())
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteVal
}

// printOnce emits an artifact exactly once per test binary, no matter how
// many benchmark iterations run.
func printOnce(key string, emit func()) {
	printOnceMu.Lock()
	defer printOnceMu.Unlock()
	if printedKeys[key] {
		return
	}
	printedKeys[key] = true
	emit()
}

// lastValue returns a series' "Avg" row value.
func lastValue(s experiment.FigureSeries) float64 {
	return s.Values[len(s.Values)-1]
}

// BenchmarkTable1MemoryConfig regenerates Table 1 (the simulated memory
// system configuration).
func BenchmarkTable1MemoryConfig(b *testing.B) {
	cfg := Table1()
	for i := 0; i < b.N; i++ {
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
	}
	printOnce("table1", func() { _ = report.Table1(os.Stdout, cfg) })
}

// figureBench is the shared body for the five figure benchmarks.
func figureBench(b *testing.B, build func(*experiment.Suite) *experiment.Figure, metrics func(*testing.B, *experiment.Figure)) {
	s := benchSuite(b)
	var fig *experiment.Figure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = build(s)
	}
	b.StopTimer()
	printOnce(fig.ID, func() { _ = report.Figure(os.Stdout, fig) })
	metrics(b, fig)
}

// BenchmarkFigure1NumSimPoints regenerates Figure 1: number of simulation
// points per benchmark, per-binary FLI vs mappable VLI.
func BenchmarkFigure1NumSimPoints(b *testing.B) {
	figureBench(b, (*experiment.Suite).Figure1, func(b *testing.B, f *experiment.Figure) {
		b.ReportMetric(lastValue(f.Series[0]), "fli_points")
		b.ReportMetric(lastValue(f.Series[1]), "vli_points")
	})
}

// BenchmarkFigure2IntervalSize regenerates Figure 2: average VLI interval
// size per benchmark (applu is the mapping-failure outlier).
func BenchmarkFigure2IntervalSize(b *testing.B) {
	figureBench(b, (*experiment.Suite).Figure2, func(b *testing.B, f *experiment.Figure) {
		b.ReportMetric(lastValue(f.Series[0]), "vli_interval_instrs")
	})
}

// BenchmarkFigure3CPIError regenerates Figure 3: whole-program CPI error
// vs full simulation, FLI vs VLI.
func BenchmarkFigure3CPIError(b *testing.B) {
	figureBench(b, (*experiment.Suite).Figure3, func(b *testing.B, f *experiment.Figure) {
		b.ReportMetric(lastValue(f.Series[0])*100, "fli_cpi_err_%")
		b.ReportMetric(lastValue(f.Series[1])*100, "vli_cpi_err_%")
	})
}

// speedupMetrics reports the Avg-row error per series as metrics.
func speedupMetrics(b *testing.B, f *experiment.Figure) {
	for _, s := range f.Series {
		b.ReportMetric(lastValue(s)*100, s.Name+"_%")
	}
}

// BenchmarkFigure4SpeedupSamePlatform regenerates Figure 4: speedup
// estimation error across optimization levels on one platform.
func BenchmarkFigure4SpeedupSamePlatform(b *testing.B) {
	figureBench(b, (*experiment.Suite).Figure4, speedupMetrics)
}

// BenchmarkFigure5SpeedupCrossPlatform regenerates Figure 5: speedup
// estimation error across platforms at fixed optimization level.
func BenchmarkFigure5SpeedupCrossPlatform(b *testing.B) {
	figureBench(b, (*experiment.Suite).Figure5, speedupMetrics)
}

// phaseTableBench regenerates a Table 2/3-style phase-bias comparison.
func phaseTableBench(b *testing.B, key, bench string, pair experiment.Pair) {
	s := benchSuite(b)
	if s.ByName(bench) == nil {
		b.Skipf("benchmark %s not in the quick suite", bench)
	}
	var tables []experiment.PhaseBias
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err = s.PhaseBiasTables(bench, pair, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce(key, func() { _ = report.PhaseBias(os.Stdout, tables) })
}

// BenchmarkTable2GccPhases regenerates Table 2: gcc's largest phases
// compared across the 32-bit and 64-bit unoptimized binaries.
func BenchmarkTable2GccPhases(b *testing.B) {
	phaseTableBench(b, "table2", "gcc", experiment.Pair{Name: "32u64u", A: 0, B: 2})
}

// BenchmarkTable3ApsiPhases regenerates Table 3: apsi's largest phases
// compared across the 32-bit and 64-bit optimized binaries.
func BenchmarkTable3ApsiPhases(b *testing.B) {
	phaseTableBench(b, "table3", "apsi", experiment.Pair{Name: "32o64o", A: 1, B: 3})
}

// ablationConfig is the reduced configuration the ablation benches sweep.
func ablationConfig() experiment.Config {
	cfg := experiment.QuickConfig()
	cfg.Benchmarks = []string{"swim", "crafty", "applu"}
	cfg.TargetOps = 600_000
	cfg.IntervalSize = 8_000
	return cfg
}

func ablationBench(b *testing.B, key string, run func() (*experiment.AblationTable, error)) {
	var tab *experiment.AblationTable
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce(key, func() { _ = report.Ablation(os.Stdout, tab) })
}

// BenchmarkAblationBICThreshold sweeps SimPoint's model-selection
// threshold (DESIGN.md §5).
func BenchmarkAblationBICThreshold(b *testing.B) {
	ablationBench(b, "abl-bic", func() (*experiment.AblationTable, error) {
		return experiment.AblationBICThreshold(ablationConfig(), []float64{0.7, 0.9, 1.0})
	})
}

// BenchmarkAblationProjectionDim sweeps the BBV projection dimension.
func BenchmarkAblationProjectionDim(b *testing.B) {
	ablationBench(b, "abl-dim", func() (*experiment.AblationTable, error) {
		return experiment.AblationProjectionDim(ablationConfig(), []int{4, 15, 64})
	})
}

// BenchmarkAblationMarkerGranularity compares mappable-point vocabularies
// (procedures only vs +loop entries vs +loop bodies).
func BenchmarkAblationMarkerGranularity(b *testing.B) {
	ablationBench(b, "abl-markers", func() (*experiment.AblationTable, error) {
		return experiment.AblationMarkerGranularity(ablationConfig())
	})
}

// BenchmarkAblationInlineHeuristic toggles the §3.3 inlined-loop matcher.
func BenchmarkAblationInlineHeuristic(b *testing.B) {
	ablationBench(b, "abl-inline", func() (*experiment.AblationTable, error) {
		return experiment.AblationInlineHeuristic(ablationConfig())
	})
}

// BenchmarkAblationWarming toggles functional cache warming during
// fast-forward, quantifying cold-start bias.
func BenchmarkAblationWarming(b *testing.B) {
	ablationBench(b, "abl-warming", func() (*experiment.AblationTable, error) {
		cfg := ablationConfig()
		cfg.Benchmarks = []string{"crafty", "mcf"}
		return experiment.AblationWarming(cfg)
	})
}

// BenchmarkAblationEarlyPoints sweeps the early-simulation-point
// tolerance (fast-forward savings vs accuracy).
func BenchmarkAblationEarlyPoints(b *testing.B) {
	ablationBench(b, "abl-early", func() (*experiment.AblationTable, error) {
		return experiment.AblationEarlyPoints(ablationConfig(), []float64{0, 0.25, 1.0})
	})
}

// BenchmarkAblationPrimaryBinary varies the primary binary the VLIs are
// constructed from.
func BenchmarkAblationPrimaryBinary(b *testing.B) {
	ablationBench(b, "abl-primary", func() (*experiment.AblationTable, error) {
		cfg := ablationConfig()
		cfg.Benchmarks = []string{"swim", "crafty"}
		return experiment.AblationPrimaryBinary(cfg)
	})
}

// BenchmarkPipelineSingleBenchmark measures the full per-benchmark
// pipeline (4 compilations, profiling, mapping, two SimPoint runs, full +
// region simulations of all four binaries).
func BenchmarkPipelineSingleBenchmark(b *testing.B) {
	cfg := experiment.QuickConfig()
	cfg.Benchmarks = []string{"gzip"}
	cfg.TargetOps = 600_000
	cfg.IntervalSize = 8_000
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunBenchmark("gzip", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// workersBench runs the single-benchmark pipeline at a fixed pool size;
// comparing the Workers=1 and Workers=GOMAXPROCS variants shows the
// wall-clock effect of the intra-benchmark parallelism (the numbers
// themselves are bit-identical — see TestWorkersDeterminism).
func workersBench(b *testing.B, workers int) {
	cfg := experiment.QuickConfig()
	cfg.Benchmarks = []string{"gzip"}
	cfg.TargetOps = 600_000
	cfg.IntervalSize = 8_000
	cfg.Workers = workers
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunBenchmark("gzip", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineWorkersSerial runs the pipeline fully serially.
func BenchmarkPipelineWorkersSerial(b *testing.B) { workersBench(b, 1) }

// BenchmarkPipelineWorkersParallel runs the pipeline on the default
// GOMAXPROCS-sized worker pool.
func BenchmarkPipelineWorkersParallel(b *testing.B) { workersBench(b, 0) }

// BenchmarkEndToEndQuickSuite measures the whole reduced evaluation.
func BenchmarkEndToEndQuickSuite(b *testing.B) {
	cfg := experiment.QuickConfig()
	cfg.TargetOps = 400_000
	cfg.IntervalSize = 6_000
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Example-style smoke check that the printed artifacts stay available to
// ordinary tests as well.
func TestBenchArtifactsBuildable(t *testing.T) {
	if testing.Short() {
		t.Skip("suite construction is not short")
	}
	cfg := experiment.QuickConfig()
	cfg.Benchmarks = []string{"swim"}
	cfg.TargetOps = 400_000
	cfg.IntervalSize = 6_000
	s, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Figures()); got != 5 {
		t.Fatalf("%d figures", got)
	}
	var sink fmt.Stringer
	_ = sink
}
